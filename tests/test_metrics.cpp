// Metrics registry, trace spans, the run manifest JSON, and the log line
// format — the observability subsystem (DESIGN.md §10).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <limits>
#include <regex>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "common/health.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/report.h"
#include "tensor/tensor.h"
#include "xbar/circuit_solver.h"
#include "xbar/geniex.h"

namespace {

using namespace nvm;

// ---------------------------------------------------------------------------
// Counter / gauge / histogram semantics

TEST(Metrics, CounterAddReturnsPostValueAndAccumulates) {
  metrics::Counter& c = metrics::counter("test/counter_basic");
  c.reset();
  EXPECT_EQ(c.add(), 1u);
  EXPECT_EQ(c.add(4), 5u);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, GaugeLastWriteWins) {
  metrics::Gauge& g = metrics::gauge("test/gauge_basic");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(Metrics, HistogramBucketsByInclusiveUpperBound) {
  metrics::Histogram& h =
      metrics::histogram("test/hist_basic", {1.0, 10.0, 100.0});
  h.reset();
  h.observe(0.5);    // <= 1      -> bucket 0
  h.observe(1.0);    // == bound  -> bucket 0 (inclusive)
  h.observe(7.0);    // <= 10     -> bucket 1
  h.observe(1000);   // overflow  -> bucket 3
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 7.0 + 1000.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Metrics, SameNameReturnsSameObject) {
  metrics::Counter& a = metrics::counter("test/same_name");
  metrics::Counter& b = metrics::counter("test/same_name");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, KindMismatchThrows) {
  metrics::counter("test/kind_clash");
  EXPECT_THROW(metrics::gauge("test/kind_clash"), CheckError);
  EXPECT_THROW(metrics::histogram("test/kind_clash"), CheckError);
}

TEST(Metrics, InvalidNameThrows) {
  EXPECT_THROW(metrics::counter("Test/Upper"), CheckError);
  EXPECT_THROW(metrics::counter("has space"), CheckError);
  EXPECT_THROW(metrics::counter(""), CheckError);
}

TEST(Metrics, HistogramBoundsMismatchThrows) {
  metrics::histogram("test/hist_bounds", {1.0, 2.0});
  EXPECT_THROW(metrics::histogram("test/hist_bounds", {1.0, 3.0}), CheckError);
  EXPECT_THROW(metrics::Histogram({2.0, 1.0}), CheckError);  // not increasing
  EXPECT_THROW(metrics::Histogram({}), CheckError);          // empty
}

TEST(Metrics, GaugeAddAggregatesAcrossWriters) {
  metrics::Gauge& g = metrics::gauge("test/gauge_add");
  g.reset();
  g.add(3.0);
  g.add(2.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set(10.0);  // set still overwrites
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Metrics, SanitizeNameComponent) {
  EXPECT_EQ(metrics::sanitize_name_component("SCIFAR10-v2"), "scifar10_v2");
  EXPECT_EQ(metrics::sanitize_name_component("a/b c"), "a_b_c");  // no '/'
  EXPECT_EQ(metrics::sanitize_name_component("ok_name.v1"), "ok_name.v1");
  EXPECT_EQ(metrics::sanitize_name_component(""), "_");
  // Sanitized output is always registrable as a component.
  metrics::counter("test/" +
                   metrics::sanitize_name_component("Tenant A (prod)"));
}

TEST(Metrics, ScopeResolvesPrefixedNamesOnce) {
  metrics::Scope scope("test/scope0");
  EXPECT_EQ(scope.full_name("hits"), "test/scope0/hits");
  metrics::Counter& a = scope.counter("hits");
  metrics::Counter& b = scope.counter("hits");       // cached
  metrics::Counter& c = metrics::counter("test/scope0/hits");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&a, &c);  // same registry entry as the free function

  scope.gauge("level").set(2.0);
  EXPECT_DOUBLE_EQ(metrics::gauge("test/scope0/level").value(), 2.0);
  scope.histogram("lat_ns").observe(5.0);
  EXPECT_GE(metrics::histogram("test/scope0/lat_ns").count(), 1u);

  EXPECT_THROW(metrics::Scope("Bad/Prefix"), CheckError);
}

TEST(Metrics, TwoScopesSamePrefixAliasWithoutThrowing) {
  // The duplicate-registration footgun: two shards loading the same model
  // build the same series twice. Scopes must alias, tally additively, and
  // never throw — including histograms with explicit (equal) bounds.
  metrics::Scope first("test/shardx");
  metrics::Scope second("test/shardx");
  first.counter("served").add(2);
  second.counter("served").add(3);
  EXPECT_EQ(&first.counter("served"), &second.counter("served"));
  EXPECT_GE(first.counter("served").value(), 5u);

  first.histogram("sizes", {1.0, 4.0});
  second.histogram("sizes", {1.0, 4.0});  // same bounds: aliases
  // Kind mismatches still throw (aliasing never papers over a real clash).
  first.counter("kind_clash");
  EXPECT_THROW(second.histogram("kind_clash"), CheckError);
}

TEST(Metrics, CountersExactUnderConcurrentAdds) {
  metrics::Counter& c = metrics::counter("test/concurrent_adds");
  c.reset();
  constexpr int kThreads = 4, kAdds = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, QuantileInterpolatesWithinBuckets) {
  metrics::MetricValue m;
  m.kind = metrics::Kind::Histogram;
  m.bounds = {10.0, 20.0, 40.0};
  m.buckets = {4, 4, 0, 0};  // uniform mass over (0,10] and (10,20]
  m.count = 8;
  // Rank q*count = 4 lands at the top of bucket 0; q=0.25 is its middle.
  EXPECT_DOUBLE_EQ(metrics::quantile(m, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(m, 0.25), 5.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(m, 0.75), 15.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(m, 1.0), 20.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(metrics::quantile(m, 2.0), 20.0);
}

TEST(Metrics, QuantileHandlesOverflowAndDegenerateInputs) {
  metrics::MetricValue m;
  m.kind = metrics::Kind::Histogram;
  m.bounds = {10.0, 20.0};
  m.buckets = {1, 0, 9};  // almost all mass beyond the last bound
  m.count = 10;
  // Overflow-bucket quantiles resolve to the highest bound (Prometheus
  // semantics): the histogram cannot see further than its last edge.
  EXPECT_DOUBLE_EQ(metrics::quantile(m, 0.99), 20.0);

  // All mass in the overflow bucket: every quantile clamps to the last
  // finite bound instead of extrapolating beyond the histogram's range.
  metrics::MetricValue overflow_only;
  overflow_only.kind = metrics::Kind::Histogram;
  overflow_only.bounds = {10.0, 20.0};
  overflow_only.buckets = {0, 0, 5};
  overflow_only.count = 5;
  EXPECT_DOUBLE_EQ(metrics::quantile(overflow_only, 0.01), 20.0);
  EXPECT_DOUBLE_EQ(metrics::quantile(overflow_only, 0.99), 20.0);

  // Degenerate inputs have no defined quantile: NaN, not a fake 0.0 (the
  // manifest writer serializes NaN as JSON null, so consumers can tell
  // "no data" from "measured zero").
  metrics::MetricValue empty;
  empty.kind = metrics::Kind::Histogram;
  empty.bounds = {10.0};
  empty.buckets = {0, 0};
  EXPECT_TRUE(std::isnan(metrics::quantile(empty, 0.5)));

  metrics::MetricValue counter;  // non-histogram
  counter.kind = metrics::Kind::Counter;
  counter.value = 7.0;
  EXPECT_TRUE(std::isnan(metrics::quantile(counter, 0.5)));

  metrics::MetricValue boundless;  // histogram with no buckets at all
  boundless.kind = metrics::Kind::Histogram;
  boundless.count = 3;
  EXPECT_TRUE(std::isnan(metrics::quantile(boundless, 0.5)));
}

TEST(Metrics, SnapshotAndDelta) {
  metrics::Counter& c = metrics::counter("test/delta_counter");
  metrics::Gauge& g = metrics::gauge("test/delta_gauge");
  c.reset();
  c.add(10);
  g.set(1.0);
  const auto base = metrics::snapshot();
  c.add(7);
  g.set(42.0);
  const auto diff = metrics::delta(metrics::snapshot(), base);
  double counter_delta = -1, gauge_value = -1;
  for (const auto& m : diff) {
    if (m.name == "test/delta_counter") counter_delta = m.value;
    if (m.name == "test/delta_gauge") gauge_value = m.value;
  }
  EXPECT_DOUBLE_EQ(counter_delta, 7.0);   // counters subtract
  EXPECT_DOUBLE_EQ(gauge_value, 42.0);    // gauges pass through
  // Snapshot is sorted by name.
  const auto snap = metrics::snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LT(snap[i - 1].name, snap[i].name);
}

// ---------------------------------------------------------------------------
// Health counters are metrics (single source of truth)

TEST(Health, BumpIsVisibleThroughBothViews) {
  reset_health_counters();
  bump(HealthCounter::SolverNonConverged, 3);
  EXPECT_EQ(health_value(HealthCounter::SolverNonConverged), 3u);
  EXPECT_EQ(metrics::counter("solver/nonconverged").value(), 3u);
  EXPECT_EQ(health_snapshot().solver_nonconverged, 3u);
  // One increment path: the metric IS the counter, no double counting.
  metrics::counter("solver/nonconverged").add();
  EXPECT_EQ(health_value(HealthCounter::SolverNonConverged), 4u);
  reset_health_counters();
  EXPECT_EQ(metrics::counter("solver/nonconverged").value(), 0u);
}

TEST(Health, MetricNamesAreCanonical) {
  EXPECT_STREQ(health_metric_name(HealthCounter::SolverNonConverged),
               "solver/nonconverged");
  EXPECT_STREQ(health_metric_name(HealthCounter::NonFiniteOutput),
               "xbar/nonfinite_outputs");
  EXPECT_STREQ(health_metric_name(HealthCounter::SurrogateFallback),
               "xbar/geniex/fallbacks");
  EXPECT_STREQ(health_metric_name(HealthCounter::CacheCorrupt),
               "cache/file/corrupt");
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(Trace, SpanRecordsCountAndTotals) {
  trace::reset_for_tests();
  trace::set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    NVM_TRACE_SPAN("test/span_basic");
  }
  const auto st = trace::span_stats("test/span_basic");
  EXPECT_EQ(st.count, 5u);
  EXPECT_GE(st.max_ns, st.min_ns);
  EXPECT_GE(st.total_ns, st.max_ns);
}

TEST(Trace, DisabledSpansRecordNothingButSecondsWorks) {
  trace::reset_for_tests();
  trace::set_enabled(false);
  {
    trace::Span s("test/span_disabled");
    EXPECT_GE(s.seconds(), 0.0);
  }
  trace::set_enabled(true);
  EXPECT_EQ(trace::span_stats("test/span_disabled").count, 0u);
}

TEST(Trace, PerThreadTablesMergeUnderPoolFanOut) {
  trace::reset_for_tests();
  constexpr std::int64_t kTasks = 64;
  ThreadPool pool(4);
  ThreadPool::ScopedUse use(pool);
  parallel_for(kTasks, [](std::int64_t) {
    NVM_TRACE_SPAN("test/span_pool");
  });
  const auto st = trace::span_stats("test/span_pool");
  EXPECT_EQ(st.count, static_cast<std::uint64_t>(kTasks));
  // The merged view appears exactly once in the snapshot.
  int seen = 0;
  for (const auto& [name, stats] : trace::snapshot())
    if (name == "test/span_pool") ++seen;
  EXPECT_EQ(seen, 1);
}

TEST(Trace, InstrumentedSolverIsBitIdenticalTracedOrNot) {
  xbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 12;
  Rng rng(3);
  Tensor g = xbar::sample_conductances(cfg, rng);
  Tensor v = xbar::sample_voltages(cfg, rng);
  xbar::SolverOptions opt;

  trace::set_enabled(true);
  Tensor traced = xbar::solve_crossbar(cfg, opt, g, v);
  trace::set_enabled(false);
  Tensor untraced = xbar::solve_crossbar(cfg, opt, g, v);
  trace::set_enabled(true);

  ASSERT_EQ(traced.numel(), untraced.numel());
  for (std::int64_t i = 0; i < traced.numel(); ++i)
    EXPECT_EQ(traced[i], untraced[i]) << "column " << i;
}

TEST(Trace, SolverBumpsSolveAndSweepCounters) {
  xbar::CrossbarConfig cfg;
  cfg.rows = cfg.cols = 8;
  Rng rng(5);
  Tensor g = xbar::sample_conductances(cfg, rng);
  Tensor v = xbar::sample_voltages(cfg, rng);
  const std::uint64_t solves0 = metrics::counter("solver/solves").value();
  const std::uint64_t sweeps0 = metrics::counter("solver/sweeps").value();
  int sweeps = 0;
  (void)xbar::solve_crossbar(cfg, xbar::SolverOptions{}, g, v, &sweeps);
  EXPECT_EQ(metrics::counter("solver/solves").value(), solves0 + 1);
  EXPECT_EQ(metrics::counter("solver/sweeps").value(),
            sweeps0 + static_cast<std::uint64_t>(sweeps));
  EXPECT_GT(sweeps, 0);
}

// ---------------------------------------------------------------------------
// JSON writer

std::string write_json(const std::function<void(core::JsonWriter&)>& fn) {
  std::ostringstream os;
  core::JsonWriter j(os);
  fn(j);
  return os.str();
}

/// Tiny structural JSON validator: objects/arrays/strings/numbers/bool/
/// null, enough to reject truncated or mis-commaed output.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            strchr("+-.eE", s_[pos_]) != nullptr))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(core::JsonWriter::escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(core::JsonWriter::escape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(core::JsonWriter::escape("line\nbreak\ttab"),
            "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(core::JsonWriter::escape(std::string("nul\x01") + "x"),
            "\"nul\\u0001x\"");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  const std::string out = write_json([](core::JsonWriter& j) {
    j.begin_object();
    j.key("nan");
    j.value(std::nan(""));
    j.key("inf");
    j.value(std::numeric_limits<double>::infinity());
    j.key("ok");
    j.value(1.5);
    j.end_object();
  });
  EXPECT_NE(out.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(out.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(out.find("\"ok\": 1.5"), std::string::npos);
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
}

TEST(Json, NestedStructuresAreWellFormed) {
  const std::string out = write_json([](core::JsonWriter& j) {
    j.begin_object();
    j.key("empty_obj");
    j.begin_object();
    j.end_object();
    j.key("arr");
    j.begin_array();
    j.value(std::uint64_t{1});
    j.value("two");
    j.begin_object();
    j.key("three");
    j.value(true);
    j.end_object();
    j.end_array();
    j.key("neg");
    j.value(std::int64_t{-7});
    j.end_object();
  });
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
}

// ---------------------------------------------------------------------------
// Run manifest

TEST(Manifest, RoundTripsConfigResultsAndMetricDeltas) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "nvm_manifest_test.json")
          .string();
  metrics::counter("test/manifest_counter").reset();
  metrics::counter("test/manifest_counter").add(5);  // pre-manifest: excluded
  {
    core::RunManifest m("unit_test", path);
    metrics::counter("test/manifest_counter").add(3);  // in-run: included
    xbar::CrossbarConfig cfg;
    cfg.name = "weird \"name\"\n";
    cfg.rows = 24;
    cfg.cols = 48;
    m.set_xbar(cfg);
    m.add_result("accuracy", 87.5);
    m.set_note("note_key", "value with\nnewline");
    // No explicit write(): destructor must flush.
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  EXPECT_TRUE(JsonChecker(text).valid()) << text;
  EXPECT_NE(text.find("\"run\": \"unit_test\""), std::string::npos);
  EXPECT_NE(text.find("\"rows\": 24"), std::string::npos);
  EXPECT_NE(text.find("\"accuracy\": 87.5"), std::string::npos);
  EXPECT_NE(text.find("\"weird \\\"name\\\"\\n\""), std::string::npos);
  EXPECT_NE(text.find("\"test/manifest_counter\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"solver/nonconverged\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Manifest, InactiveWithoutPathWritesNothing) {
  core::RunManifest m("inert", "");
  EXPECT_FALSE(m.active());
  m.add_result("x", 1.0);
  m.write();  // must be a no-op, not a crash
}

TEST(Manifest, FromEnvPrefersFlagOverEnvironment) {
  ASSERT_EQ(setenv("NVM_METRICS_OUT", "/tmp/from_env.json", 1), 0);
  core::RunManifest from_flag = core::RunManifest::from_env("r", "/dev/null");
  EXPECT_TRUE(from_flag.active());
  core::RunManifest from_env = core::RunManifest::from_env("r");
  EXPECT_TRUE(from_env.active());
  ASSERT_EQ(unsetenv("NVM_METRICS_OUT"), 0);
  core::RunManifest inert = core::RunManifest::from_env("r");
  EXPECT_FALSE(inert.active());
  // Keep the env-pointed file from being written by the temporaries.
  from_env.write();  // writes /tmp/from_env.json once
  std::filesystem::remove("/tmp/from_env.json");
}

// ---------------------------------------------------------------------------
// Log line format

TEST(Logging, PrefixFormatIsStable) {
  const std::string p = log_prefix(LogLevel::Warn, "some/dir/file.cpp", 42);
  // "[W 2026-08-05T14:03:21.042 t0 file.cpp:42] "
  const std::regex re(
      R"(\[W \d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3} t\d+ file\.cpp:42\] )");
  EXPECT_TRUE(std::regex_match(p, re)) << p;
}

TEST(Logging, ThreadIdsAreSmallAndStablePerThread) {
  const int id_a = log_thread_id();
  EXPECT_EQ(log_thread_id(), id_a);  // stable within a thread
  int id_b = -1;
  std::thread([&id_b] { id_b = log_thread_id(); }).join();
  EXPECT_NE(id_b, -1);
  EXPECT_NE(id_b, id_a);  // distinct across threads
}

TEST(Logging, LevelThresholdGatesMessages) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::Warn);
  detail::LogMessage err(LogLevel::Error, __FILE__, __LINE__);
  EXPECT_TRUE(err.enabled());
  err << "level-threshold self-test (this line is expected)";
  EXPECT_FALSE(detail::LogMessage(LogLevel::Debug, __FILE__, __LINE__).enabled());
  set_log_level(prev);
}

}  // namespace

// Deployment cost accounting: per-inference crossbar reads, ADC
// conversions, energy and latency estimates for each task's network on
// each Table I crossbar design, plus the mapping-knob sensitivity
// (slices x streams multiply the pass count).
#include "bench_util.h"
#include "puma/cost_model.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_cost_model");
  core::TablePrinter table({"Task", "Crossbar", "Mapping", "xbar reads",
                            "ADC convs", "energy (nJ)", "latency (us)",
                            "mean util"});

  for (core::Task task : {core::task_scifar10(), core::task_simagenet()}) {
    core::PreparedTask prepared = core::prepare(task);
    const Tensor& sample = prepared.dataset.test_images.front();
    for (const std::string& name : xbar::paper_model_names()) {
      const xbar::CrossbarConfig cfg = xbar::preset(name);
      for (const auto& [label, hw] : {
               std::pair<std::string, puma::HwConfig>{"w7s3/i6t3", {}},
               [] {
                 puma::HwConfig h;
                 h.slice_bits = 6;
                 h.stream_bits = 6;
                 return std::pair<std::string, puma::HwConfig>{"w7s6/i6t6", h};
               }(),
           }) {
        puma::CostReport report =
            puma::estimate_cost(prepared.network, sample, cfg, hw);
        char util[16];
        std::snprintf(util, sizeof util, "%.2f", report.mean_utilization);
        table.add_row({task.name, name, label,
                       std::to_string(report.total_crossbar_reads),
                       std::to_string(report.total_adc_conversions),
                       core::fmt(static_cast<float>(report.total_energy_nj)),
                       core::fmt(static_cast<float>(report.total_latency_us)),
                       util});
      }
    }
  }
  table.print("Per-inference deployment cost (first-order ISAAC/PUMA-style model)");
  return 0;
}

// Fig. 6 reproduction: Hardware-in-Loop adaptive Ensemble Black-Box PGD
// (iter=30) on SCIFAR10/SCIFAR100. The target runs on the 64x64_100k
// crossbar; the attacker builds their synthetic distillation set by
// querying the network deployed on *their own* crossbar model (which may
// not match the target's). Paper finding: adaptive attacks fall well below
// the baseline, and attackers whose NF is closer to the target's craft
// stronger attacks.
#include "attack/ensemble_bb.h"
#include "attack/pgd.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_fig6_adaptive_bb");
  const std::vector<float> paper_eps = {2.0f, 4.0f};
  const std::int64_t n_eval = env_int("NVMROBUST_FIG6_N", scaled(24, 500));
  auto models = bench::paper_models();
  auto target_model = xbar::make_geniex("64x64_100k");

  for (core::Task task : {core::task_scifar10(), core::task_scifar100()}) {
    trace::Span total("bench/total");
    core::PreparedTask prepared = core::prepare(task);
    auto images = prepared.eval_images(n_eval);
    auto labels = prepared.eval_labels(n_eval);
    auto calib = prepared.calibration_images();

    // Distillation query set: subsampled training images (crossbar
    // queries are expensive, mirroring the paper's reduced query budget).
    const auto n_query = static_cast<std::size_t>(std::min<std::int64_t>(
        scaled(300, 4000),
        static_cast<std::int64_t>(prepared.dataset.train_images.size())));
    std::span<const Tensor> query_images(prepared.dataset.train_images.data(),
                                         n_query);

    std::printf(
        "\n== Fig 6: adaptive Ensemble BB PGD (iter=30), %s, target=64x64_100k, n=%lld ==\n",
        task.name.c_str(), static_cast<long long>(images.size()));
    std::printf("x-axis: paper eps/255");
    for (float eps : paper_eps) std::printf(", %.0f", eps);
    std::printf("\n");

    // Baseline series: accuracy of the *digital* network under the
    // non-adaptive interpretation is not meaningful here; the paper plots
    // the target-hardware accuracy under each attacker's images, plus the
    // digital baseline under the digital attack for reference. We report
    // target-hardware clean accuracy as the reference line.
    {
      std::vector<float> clean_line;
      const float target_clean =
          bench::hw_accuracy(prepared, target_model, images, labels);
      clean_line.assign(paper_eps.size(), target_clean);
      core::print_series("target_clean(ref)", clean_line);
    }

    for (auto& attacker_xbar : models) {
      // 1. Attacker queries the network deployed on THEIR crossbar model.
      trace::Span sw("bench/stage");
      attack::EnsembleBbOptions bb_opt;
      bb_opt.epochs =
          static_cast<std::int64_t>(env_int("NVMROBUST_SURR_EPOCHS", 12));
      attack::SurrogateEnsemble surrogates = [&] {
        puma::HwDeployment dep(prepared.network, attacker_xbar.model, calib);
        return attack::SurrogateEnsemble::distill(
            [&](const Tensor& x) {
              return prepared.network.forward(x, nn::Mode::Eval);
            },
            query_images, task.data_spec.classes, bb_opt,
            "adaptive_" + task.name + "_" + attacker_xbar.name);
      }();
      auto ensemble = surrogates.attack_model();

      // 2. Craft per epsilon; 3. evaluate on the target hardware.
      std::vector<float> series;
      for (float eps : paper_eps) {
        attack::PgdOptions opt;
        opt.epsilon = task.scaled_eps(eps);
        opt.iters = 30;
        std::vector<Tensor> adv =
            core::craft_pgd(*ensemble, images, labels, opt);
        series.push_back(bench::hw_accuracy(
            prepared, target_model, {adv.data(), adv.size()}, labels));
      }
      core::print_series("attacker_" + attacker_xbar.name, series);
      bench::progress("attacker " + attacker_xbar.name, sw.seconds());
    }
    std::printf("[%s done in %.0fs]\n", task.name.c_str(), total.seconds());
  }
  return 0;
}

// Microbenchmarks (google-benchmark) for the crossbar MVM backends and
// the tiled GEMM path — the cost hierarchy that motivates using the
// GENIEx surrogate (not the circuit solver) inside DNN experiments.
//
// The *Threads benchmarks drive the same code through explicit
// nvm::ThreadPool sizes (the benchmark Arg is the pool size, overriding
// NVM_THREADS), so one run reports the scaling curve. To capture a BENCH
// trajectory file for a PR, emit machine-readable JSON:
//
//   ./build/bench/bench_mvm_perf --benchmark_out=bench_mvm_perf.json
//       --benchmark_out_format=json
//
// --metrics-out PATH additionally writes the nvm::metrics run manifest.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/report.h"
#include "puma/tiled_mvm.h"
#include "tensor/ops.h"
#include "xbar/circuit_solver.h"
#include "xbar/fast_noise.h"
#include "xbar/geniex.h"
#include "xbar/model_zoo.h"

namespace {

using namespace nvm;

xbar::CrossbarConfig bench_cfg(std::int64_t n) {
  xbar::CrossbarConfig cfg = xbar::xbar_64x64_100k();
  cfg.rows = cfg.cols = n;
  return cfg;
}

Tensor bench_g(const xbar::CrossbarConfig& cfg) {
  Rng rng(1);
  return xbar::sample_conductances(cfg, rng);
}

Tensor bench_v(const xbar::CrossbarConfig& cfg) {
  Rng rng(2);
  return xbar::sample_voltages(cfg, rng);
}

void BM_IdealMvm(benchmark::State& state) {
  const auto cfg = bench_cfg(state.range(0));
  xbar::IdealXbarModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  Tensor v = bench_v(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm(v));
}
BENCHMARK(BM_IdealMvm)->Arg(32)->Arg(64);

void BM_FastNoiseMvm(benchmark::State& state) {
  const auto cfg = bench_cfg(state.range(0));
  xbar::FastNoiseModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  Tensor v = bench_v(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm(v));
}
BENCHMARK(BM_FastNoiseMvm)->Arg(32)->Arg(64);

void BM_GeniexMvm(benchmark::State& state) {
  // Uses the cached Table I surrogate for the 64x64_100k preset.
  auto model = xbar::make_geniex("64x64_100k");
  const auto& cfg = model->config();
  auto programmed = model->program(bench_g(cfg));
  Tensor v = bench_v(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm(v));
}
BENCHMARK(BM_GeniexMvm);

void BM_GeniexMvmBatch64(benchmark::State& state) {
  auto model = xbar::make_geniex("64x64_100k");
  const auto& cfg = model->config();
  auto programmed = model->program(bench_g(cfg));
  Rng rng(3);
  Tensor vb({cfg.rows, 64});
  for (auto& x : vb.data())
    x = static_cast<float>(rng.uniform(0, cfg.v_read));
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm_batch(vb));
}
BENCHMARK(BM_GeniexMvmBatch64)->Unit(benchmark::kMillisecond);

void BM_CircuitSolverMvm(benchmark::State& state) {
  const auto cfg = bench_cfg(state.range(0));
  xbar::CircuitSolverModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  Tensor v = bench_v(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm(v));
}
BENCHMARK(BM_CircuitSolverMvm)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_TiledMatmul(benchmark::State& state) {
  // A stage-2 conv GEMM: (16 x 72) weights, 36 im2col columns.
  Rng rng(4);
  Tensor w = Tensor::normal({16, 72}, 0, 0.1f, rng);
  Tensor x({72, 36});
  for (auto& v : x.data())
    v = rng.bernoulli(0.5) ? 0.0f : static_cast<float>(rng.uniform(0, 1));
  std::shared_ptr<const xbar::MvmModel> model;
  if (state.range(0) == 0) {
    model = std::make_shared<xbar::IdealXbarModel>(xbar::xbar_64x64_100k());
  } else {
    model = xbar::make_geniex("64x64_100k");
  }
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  for (auto _ : state) benchmark::DoNotOptimize(tiled.matmul(x, 1.0f));
}
BENCHMARK(BM_TiledMatmul)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_CircuitSolverBatchThreads(benchmark::State& state) {
  // One programmed crossbar, 16 independent input vectors: the default
  // mvm_batch fans columns across the pool (GENIEx sample generation and
  // validation sweeps are exactly this shape).
  const auto cfg = bench_cfg(32);
  xbar::CircuitSolverModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  Rng rng(6);
  Tensor vb({cfg.rows, 16});
  for (auto& x : vb.data())
    x = static_cast<float>(rng.uniform(0, cfg.v_read));
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  ThreadPool::ScopedUse use(pool);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm_batch(vb));
}
BENCHMARK(BM_CircuitSolverBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_TiledMatmulThreads(benchmark::State& state) {
  // A wider GEMM than BM_TiledMatmul ((64 x 288) weights, 64 im2col
  // columns -> 2x9 tile grid x 2 polarities x 2 slices) so the per-slot
  // fan-out has enough independent crossbar passes to scale.
  Rng rng(7);
  Tensor w = Tensor::normal({64, 288}, 0, 0.1f, rng);
  Tensor x({288, 64});
  for (auto& v : x.data())
    v = rng.bernoulli(0.5) ? 0.0f : static_cast<float>(rng.uniform(0, 1));
  auto model =
      std::make_shared<xbar::FastNoiseModel>(xbar::xbar_64x64_100k());
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  ThreadPool::ScopedUse use(pool);
  for (auto _ : state) benchmark::DoNotOptimize(tiled.matmul(x, 1.0f));
}
BENCHMARK(BM_TiledMatmulThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_FloatGemmReference(benchmark::State& state) {
  Rng rng(5);
  Tensor w = Tensor::normal({16, 72}, 0, 0.1f, rng);
  Tensor x = Tensor::uniform({72, 36}, 0, 1, rng);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(w, x));
}
BENCHMARK(BM_FloatGemmReference);

}  // namespace

// Expanded BENCHMARK_MAIN: peel our --metrics-out flag off argv before
// google-benchmark sees (and rejects) it, and write the run manifest after
// the benchmarks finish.
int main(int argc, char** argv) {
  std::string metrics_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  nvm::core::RunManifest manifest =
      nvm::core::RunManifest::from_env("bench_mvm_perf", metrics_path);

  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Microbenchmarks (google-benchmark) for the crossbar MVM backends and
// the tiled GEMM path — the cost hierarchy that motivates using the
// GENIEx surrogate (not the circuit solver) inside DNN experiments.
//
// The *Threads benchmarks drive the same code through explicit
// nvm::ThreadPool sizes (the benchmark Arg is the pool size, overriding
// NVM_THREADS), so one run reports the scaling curve. To capture a BENCH
// trajectory file for a PR, emit machine-readable JSON:
//
//   ./build/bench/bench_mvm_perf --benchmark_out=bench_mvm_perf.json
//       --benchmark_out_format=json
//
// --metrics-out PATH additionally writes the nvm::metrics run manifest.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/report.h"
#include "puma/plan.h"
#include "puma/tiled_mvm.h"
#include "tensor/ops.h"
#include "xbar/circuit_solver.h"
#include "xbar/fast_noise.h"
#include "xbar/geniex.h"
#include "xbar/model_zoo.h"

namespace {

using namespace nvm;

xbar::CrossbarConfig bench_cfg(std::int64_t n) {
  xbar::CrossbarConfig cfg = xbar::xbar_64x64_100k();
  cfg.rows = cfg.cols = n;
  return cfg;
}

Tensor bench_g(const xbar::CrossbarConfig& cfg) {
  Rng rng(1);
  return xbar::sample_conductances(cfg, rng);
}

Tensor bench_v(const xbar::CrossbarConfig& cfg) {
  Rng rng(2);
  return xbar::sample_voltages(cfg, rng);
}

void BM_IdealMvm(benchmark::State& state) {
  const auto cfg = bench_cfg(state.range(0));
  xbar::IdealXbarModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  Tensor v = bench_v(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm(v));
}
BENCHMARK(BM_IdealMvm)->Arg(32)->Arg(64);

void BM_FastNoiseMvm(benchmark::State& state) {
  const auto cfg = bench_cfg(state.range(0));
  xbar::FastNoiseModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  Tensor v = bench_v(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm(v));
}
BENCHMARK(BM_FastNoiseMvm)->Arg(32)->Arg(64);

void BM_GeniexMvm(benchmark::State& state) {
  // Uses the cached Table I surrogate for the 64x64_100k preset.
  auto model = xbar::make_geniex("64x64_100k");
  const auto& cfg = model->config();
  auto programmed = model->program(bench_g(cfg));
  Tensor v = bench_v(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm(v));
}
BENCHMARK(BM_GeniexMvm);

void BM_GeniexMvmBatch64(benchmark::State& state) {
  auto model = xbar::make_geniex("64x64_100k");
  const auto& cfg = model->config();
  auto programmed = model->program(bench_g(cfg));
  Rng rng(3);
  Tensor vb({cfg.rows, 64});
  for (auto& x : vb.data())
    x = static_cast<float>(rng.uniform(0, cfg.v_read));
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm_batch(vb));
}
BENCHMARK(BM_GeniexMvmBatch64)->Unit(benchmark::kMillisecond);

Tensor bench_vblock(const xbar::CrossbarConfig& cfg, std::int64_t n) {
  Rng rng(8);
  Tensor vb({cfg.rows, n});
  for (auto& x : vb.data())
    x = rng.bernoulli(0.25) ? 0.0f : static_cast<float>(rng.uniform(0, cfg.v_read));
  return vb;
}

// Multi-RHS family: the same 64x64 fast-noise crossbar driven with a block
// of 1/8/32/128 input vectors, once through the single-vector mvm loop and
// once through the blocked mvm_multi path. Compare items_per_second between
// the two at equal block size for the batching speedup.
// Mirrors each leg's columns/sec into the metrics registry so the
// --metrics-out run manifest (the committed BENCH_mvm_perf.json) records
// the batched-vs-looped comparison alongside the warm-start numbers.
void record_cols_per_sec(const char* leg, std::int64_t block, double items,
                         double seconds) {
  if (seconds <= 0.0) return;
  std::ostringstream name;
  name << "bench/multi_rhs/" << leg << "_b" << block << "_cols_per_sec";
  metrics::gauge(name.str()).set(items / seconds);
}

void BM_FastNoiseMvmLooped(benchmark::State& state) {
  const auto cfg = bench_cfg(64);
  xbar::FastNoiseModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  const std::int64_t n = state.range(0);
  Tensor vb = bench_vblock(cfg, n);
  Tensor v({cfg.rows});
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (std::int64_t k = 0; k < n; ++k) {
      for (std::int64_t i = 0; i < cfg.rows; ++i) v[i] = vb.at(i, k);
      benchmark::DoNotOptimize(programmed->mvm(v));
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  state.SetItemsProcessed(state.iterations() * n);
  record_cols_per_sec("looped", n,
                      static_cast<double>(state.iterations() * n), dt.count());
}
BENCHMARK(BM_FastNoiseMvmLooped)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_FastNoiseMvmMulti(benchmark::State& state) {
  const auto cfg = bench_cfg(64);
  xbar::FastNoiseModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  const std::int64_t n = state.range(0);
  Tensor vb = bench_vblock(cfg, n);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm_multi(vb));
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  state.SetItemsProcessed(state.iterations() * n);
  record_cols_per_sec("multi", n,
                      static_cast<double>(state.iterations() * n), dt.count());
}
BENCHMARK(BM_FastNoiseMvmMulti)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_IdealMvmMulti(benchmark::State& state) {
  const auto cfg = bench_cfg(64);
  xbar::IdealXbarModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  const std::int64_t n = state.range(0);
  Tensor vb = bench_vblock(cfg, n);
  // Derive sustained arithmetic throughput from the kernel layer's own
  // simd/flops counter (every gemm-family kernel self-reports 2*m*n*k)
  // rather than re-deriving shapes here; the widest block is the
  // representative number and lands in the run manifest as
  // bench/simd/gflops alongside the active tier (simd/isa).
  metrics::Counter& flops = metrics::counter("simd/flops");
  const std::uint64_t f0 = flops.value();
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm_multi(vb));
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  state.SetItemsProcessed(state.iterations() * n);
  const double gflops =
      dt.count() > 0.0
          ? static_cast<double>(flops.value() - f0) / dt.count() * 1e-9
          : 0.0;
  state.counters["gflops"] = gflops;
  if (n == 128) metrics::gauge("bench/simd/gflops").set(gflops);
}
BENCHMARK(BM_IdealMvmMulti)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_CircuitSolverMvm(benchmark::State& state) {
  const auto cfg = bench_cfg(state.range(0));
  xbar::CircuitSolverModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  Tensor v = bench_v(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm(v));
}
BENCHMARK(BM_CircuitSolverMvm)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_TiledMatmul(benchmark::State& state) {
  // A stage-2 conv GEMM: (16 x 72) weights, 36 im2col columns.
  Rng rng(4);
  Tensor w = Tensor::normal({16, 72}, 0, 0.1f, rng);
  Tensor x({72, 36});
  for (auto& v : x.data())
    v = rng.bernoulli(0.5) ? 0.0f : static_cast<float>(rng.uniform(0, 1));
  std::shared_ptr<const xbar::MvmModel> model;
  if (state.range(0) == 0) {
    model = std::make_shared<xbar::IdealXbarModel>(xbar::xbar_64x64_100k());
  } else {
    model = xbar::make_geniex("64x64_100k");
  }
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  for (auto _ : state) benchmark::DoNotOptimize(tiled.matmul(x, 1.0f));
}
BENCHMARK(BM_TiledMatmul)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_CircuitSolverBatchThreads(benchmark::State& state) {
  // One programmed crossbar, 16 independent input vectors: the default
  // mvm_batch fans columns across the pool (GENIEx sample generation and
  // validation sweeps are exactly this shape).
  const auto cfg = bench_cfg(32);
  xbar::CircuitSolverModel model(cfg);
  auto programmed = model.program(bench_g(cfg));
  Rng rng(6);
  Tensor vb({cfg.rows, 16});
  for (auto& x : vb.data())
    x = static_cast<float>(rng.uniform(0, cfg.v_read));
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  ThreadPool::ScopedUse use(pool);
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm_batch(vb));
}
BENCHMARK(BM_CircuitSolverBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_TiledMatmulThreads(benchmark::State& state) {
  // A wider GEMM than BM_TiledMatmul ((64 x 288) weights, 64 im2col
  // columns -> 2x9 tile grid x 2 polarities x 2 slices) so the per-slot
  // fan-out has enough independent crossbar passes to scale.
  Rng rng(7);
  Tensor w = Tensor::normal({64, 288}, 0, 0.1f, rng);
  Tensor x({288, 64});
  for (auto& v : x.data())
    v = rng.bernoulli(0.5) ? 0.0f : static_cast<float>(rng.uniform(0, 1));
  auto model =
      std::make_shared<xbar::FastNoiseModel>(xbar::xbar_64x64_100k());
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  ThreadPool::ScopedUse use(pool);
  for (auto _ : state) benchmark::DoNotOptimize(tiled.matmul(x, 1.0f));
}
BENCHMARK(BM_TiledMatmulThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Plan A/B: the serve-shaped fast-noise batched matmul ((16 x 128)
// classifier head, 32-column block) with the execution plan off (Arg 0,
// the per-call interpreter) and on (Arg 1, fused chunk kernels + pooled
// workspaces). Results are bit-identical; the time ratio is the fusion
// win. Per-arm ms land in the run manifest as
// bench/plan/tiled_matmul_{interp,plan}_ms and the ratio as
// bench/plan/tiled_matmul_speedup — the perf gate holds the ratio >= 1.2.
void BM_TiledMatmulPlan(benchmark::State& state) {
  Rng rng(10);
  Tensor w = Tensor::normal({16, 128}, 0, 0.1f, rng);
  Tensor x({128, 32});
  for (auto& v : x.data())
    v = rng.bernoulli(0.5) ? 0.0f : static_cast<float>(rng.uniform(0, 1));
  auto model =
      std::make_shared<xbar::FastNoiseModel>(xbar::xbar_32x32_100k());
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  const bool use_plan = state.range(0) != 0;
  puma::ScopedPlanForTests gate(use_plan);
  (void)tiled.plan();  // compile outside the timed region
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) benchmark::DoNotOptimize(tiled.matmul(x, 1.0f));
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  if (state.iterations() == 0) return;
  const double ms = dt.count() * 1e3 / static_cast<double>(state.iterations());
  metrics::gauge(use_plan ? "bench/plan/tiled_matmul_plan_ms"
                          : "bench/plan/tiled_matmul_interp_ms")
      .set(ms);
  if (use_plan) {
    // Arg 0 registered first, so the interpreter gauge is already set.
    const double interp =
        metrics::gauge("bench/plan/tiled_matmul_interp_ms").value();
    if (ms > 0.0 && interp > 0.0)
      metrics::gauge("bench/plan/tiled_matmul_speedup").set(interp / ms);
  }
}
BENCHMARK(BM_TiledMatmulPlan)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Warm-start A/B: the same circuit-solver tiled matmul with stream
// warm-starting off (Arg 0, the pre-streaming behavior) and on (Arg 1).
// sweeps_per_matmul in the JSON is the acceptance number: warm-starting
// must cut total relaxation sweeps per tiled matmul by >= 20%.
void BM_SolverTiledMatmulWarmStart(benchmark::State& state) {
  Rng rng(9);
  Tensor w = Tensor::normal({16, 16}, 0, 0.1f, rng);
  Tensor x({16, 8});
  for (auto& v : x.data())
    v = rng.bernoulli(0.5) ? 0.0f : static_cast<float>(rng.uniform(0, 1));
  xbar::SolverOptions opt;
  opt.warm_start_streams = state.range(0) != 0;
  auto model = std::make_shared<xbar::CircuitSolverModel>(bench_cfg(16), opt);
  puma::TiledMatrix tiled(w, model, puma::HwConfig{});
  metrics::Counter& sweeps = metrics::counter("solver/sweeps");
  metrics::Counter& solves = metrics::counter("solver/solves");
  const std::uint64_t s0 = sweeps.value(), n0 = solves.value();
  // Streaming telemetry across the A/B: the sweep-counter trajectory per
  // benchmark iteration shows warm-starting flattening the slope.
  telemetry::track("solver/sweeps");
  std::uint64_t it = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiled.matmul(x, 1.0f));
    telemetry::sample_all(it++);
  }
  const double iters = static_cast<double>(state.iterations());
  const double sweeps_per = static_cast<double>(sweeps.value() - s0) / iters;
  state.counters["sweeps_per_matmul"] = sweeps_per;
  state.counters["solves_per_matmul"] =
      static_cast<double>(solves.value() - n0) / iters;
  // Mirror the A/B numbers into the metrics registry so the --metrics-out
  // run manifest (the committed BENCH_mvm_perf.json) records both.
  metrics::gauge(opt.warm_start_streams
                     ? "bench/warm_start/sweeps_per_matmul_warm"
                     : "bench/warm_start/sweeps_per_matmul_cold")
      .set(sweeps_per);
}
BENCHMARK(BM_SolverTiledMatmulWarmStart)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Sweep-schedule A/B: the identical solve under the red-black plane
// schedule (Arg 0, the default) and the legacy chain-at-a-time schedule
// (Arg 1). Sweep counts are bit-identical by construction; the time
// difference is pure loop-nest / vectorization win, mirrored into the run
// manifest as bench/solver/ordering_{redblack,lexicographic}_ms.
void BM_CircuitSolverOrdering(benchmark::State& state) {
  const auto cfg = bench_cfg(64);
  xbar::SolverOptions opt;
  opt.ordering = state.range(0) == 0 ? xbar::SweepOrdering::kRedBlack
                                     : xbar::SweepOrdering::kLexicographic;
  xbar::CircuitSolverModel model(cfg, opt);
  auto programmed = model.program(bench_g(cfg));
  Tensor v = bench_v(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) benchmark::DoNotOptimize(programmed->mvm(v));
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  if (state.iterations() > 0)
    metrics::gauge(state.range(0) == 0
                       ? "bench/solver/ordering_redblack_ms"
                       : "bench/solver/ordering_lexicographic_ms")
        .set(dt.count() * 1e3 / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CircuitSolverOrdering)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_FloatGemmReference(benchmark::State& state) {
  Rng rng(5);
  Tensor w = Tensor::normal({16, 72}, 0, 0.1f, rng);
  Tensor x = Tensor::uniform({72, 36}, 0, 1, rng);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(w, x));
}
BENCHMARK(BM_FloatGemmReference);

}  // namespace

// Expanded BENCHMARK_MAIN: peel our --metrics-out flag off argv before
// google-benchmark sees (and rejects) it, and write the run manifest after
// the benchmarks finish.
int main(int argc, char** argv) {
  std::string metrics_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  nvm::core::RunManifest manifest =
      nvm::core::RunManifest::from_env("bench_mvm_perf", metrics_path);

  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

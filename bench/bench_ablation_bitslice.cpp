// Ablation: how the PUMA mapping knobs (weight slicing, input streaming,
// ADC resolution) and the deployment-time compensation options (gain trim,
// BN re-estimation) move the clean-accuracy / robustness trade-off on the
// most non-ideal crossbar (64x64_100k), SCIFAR10.
//
// DESIGN.md calls these out as the design choices behind the default
// configuration: w7/s3, i6/t3, 10-bit ADC, no compensation.
#include "attack/pgd.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_ablation_bitslice");
  core::Task task = core::task_scifar10();
  core::PreparedTask prepared = core::prepare(task);
  const std::int64_t n_eval = env_int("NVMROBUST_ABL_N", scaled(32, 500));
  auto images = prepared.eval_images(n_eval);
  auto labels = prepared.eval_labels(n_eval);
  auto calib = prepared.calibration_images();
  auto model = xbar::make_geniex("64x64_100k");

  // One white-box adversarial set (paper eps 2/255), crafted against the
  // digital network, shared by every configuration.
  attack::NetworkAttackModel attacker(prepared.network);
  attack::PgdOptions pgd;
  pgd.epsilon = task.scaled_eps(2.0f);
  pgd.iters = 30;
  std::vector<Tensor> adv = core::craft_pgd(attacker, images, labels, pgd);

  const float base_clean =
      core::accuracy(core::plain_forward(prepared.network), images, labels);
  const float base_adv = core::accuracy(core::plain_forward(prepared.network),
                                        adv, labels);

  struct Config {
    std::string name;
    puma::HwConfig hw;
  };
  std::vector<Config> configs;
  {
    Config c{"default (w7/s3 i6/t3 adc10)", {}};
    configs.push_back(c);
  }
  {
    Config c{"single weight slice (s6)", {}};
    c.hw.slice_bits = 6;  // 64-level devices; one slice
    configs.push_back(c);
  }
  {
    Config c{"single input stream (t6)", {}};
    c.hw.stream_bits = 6;
    configs.push_back(c);
  }
  {
    Config c{"coarse ADC (8-bit)", {}};
    c.hw.adc_bits = 8;
    configs.push_back(c);
  }
  {
    Config c{"fine ADC (12-bit)", {}};
    c.hw.adc_bits = 12;
    configs.push_back(c);
  }
  {
    Config c{"4-bit inputs (i4/t2)", {}};
    c.hw.input_bits = 4;
    c.hw.stream_bits = 2;
    configs.push_back(c);
  }
  {
    Config c{"+ gain trim", {}};
    c.hw.gain_trim = true;
    configs.push_back(c);
  }
  {
    Config c{"+ BN re-estimation", {}};
    c.hw.bn_reestimate = true;
    configs.push_back(c);
  }

  core::TablePrinter table({"Mapping config", "Clean acc", "WB adv acc",
                            "Clean delta", "Robustness gain"});
  table.add_row({"digital baseline", core::fmt(base_clean),
                 core::fmt(base_adv), "-", "-"});
  for (const Config& config : configs) {
    trace::Span sw("bench/stage");
    // 64-level single-slice config needs a device with enough levels.
    auto cfg_model = model;
    if (config.hw.slice_bits > 4) {
      xbar::CrossbarConfig cfg = model->config();
      cfg.levels = std::int64_t{1} << config.hw.slice_bits;
      cfg_model = std::make_shared<xbar::GeniexModel>(cfg, model->mlp());
    }
    puma::HwDeployment dep(prepared.network, cfg_model, calib, config.hw);
    const float clean =
        core::accuracy(core::plain_forward(prepared.network), images, labels);
    const float adv_acc = core::accuracy(
        core::plain_forward(prepared.network), adv, labels);
    table.add_row({config.name, core::fmt(clean), core::fmt(adv_acc),
                   core::fmt(clean - base_clean),
                   core::fmt(adv_acc - base_adv)});
    bench::progress(config.name, sw.seconds());
  }
  table.print(
      "Ablation: PUMA mapping knobs on 64x64_100k, SCIFAR10 (WB PGD, paper "
      "eps 2/255)");
  return 0;
}

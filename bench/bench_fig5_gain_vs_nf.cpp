// Fig. 5 reproduction: absolute adversarial-accuracy gain vs crossbar
// Non-ideality Factor, for the non-adaptive attacks on SCIFAR10/SCIFAR100.
//
// Paper shape: gain rises steeply from NF~0.07 to NF~0.14, then tapers at
// NF~0.26 as inaccurate computation starts to outweigh the intrinsic
// robustness (the push-pull effect).
#include "attack/ensemble_bb.h"
#include "attack/pgd.h"
#include "attack/square.h"
#include "bench_util.h"
#include "xbar/nf.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_fig5_gain_vs_nf");
  const std::int64_t n_eval = env_int("NVMROBUST_FIG5_N", scaled(32, 500));
  auto models = bench::paper_models();

  // Measure NF of each GENIEx model once.
  std::vector<double> nf_values;
  for (auto& nm : models) {
    xbar::NfOptions opt;
    opt.samples = scaled(24, 96);
    nf_values.push_back(xbar::measure_nf(*nm.model, opt).nf);
  }

  core::TablePrinter table({"Task", "Attack", "Crossbar", "NF",
                            "Baseline adv acc", "HW adv acc", "Gain"});

  for (core::Task task : {core::task_scifar10(), core::task_scifar100()}) {
    trace::Span total("bench/total");
    core::PreparedTask prepared = core::prepare(task);
    auto images = prepared.eval_images(n_eval);
    auto labels = prepared.eval_labels(n_eval);

    // Three non-adaptive adversarial sets: ensemble BB (eps 4), square
    // (eps 4), white-box (eps 1) — the attacks plotted in the figure.
    struct AdvSet {
      std::string name;
      std::vector<Tensor> adv;
    };
    std::vector<AdvSet> sets;

    {
      attack::EnsembleBbOptions bb_opt;
      bb_opt.epochs =
          static_cast<std::int64_t>(env_int("NVMROBUST_SURR_EPOCHS", 12));
      attack::SurrogateEnsemble surrogates =
          attack::SurrogateEnsemble::distill(
              [&](const Tensor& x) {
                return prepared.network.forward(x, nn::Mode::Eval);
              },
              prepared.dataset.train_images, task.data_spec.classes, bb_opt,
              "nonadaptive_" + task.name);
      auto ensemble = surrogates.attack_model();
      attack::PgdOptions opt;
      opt.epsilon = task.scaled_eps(4.0f);
      opt.iters = 30;
      sets.push_back(
          {"EnsembleBB eps4", core::craft_pgd(*ensemble, images, labels, opt)});
    }
    {
      attack::NetworkAttackModel victim(prepared.network);
      attack::SquareOptions opt;
      opt.epsilon = task.scaled_eps(4.0f);
      opt.max_queries = env_int("NVMROBUST_SQ_QUERIES", scaled(100, 1000));
      sets.push_back(
          {"Square eps4", core::craft_square(victim, images, labels, opt)});
    }
    {
      attack::NetworkAttackModel attacker(prepared.network);
      attack::PgdOptions opt;
      // Paper eps 2/255: the operating point where the baseline has
      // collapsed into the paper's regime (see EXPERIMENTS.md on the
      // epsilon mapping).
      opt.epsilon = task.scaled_eps(2.0f);
      opt.iters = 30;
      sets.push_back(
          {"WhiteBox eps2", core::craft_pgd(attacker, images, labels, opt)});
    }

    for (const AdvSet& set : sets) {
      std::span<const Tensor> adv(set.adv.data(), set.adv.size());
      const float baseline =
          core::accuracy(core::plain_forward(prepared.network), adv, labels);
      for (std::size_t m = 0; m < models.size(); ++m) {
        const float hw =
            bench::hw_accuracy(prepared, models[m].model, adv, labels);
        table.add_row({task.name, set.name, models[m].name,
                       core::fmt(static_cast<float>(nf_values[m])),
                       core::fmt(baseline), core::fmt(hw),
                       core::fmt(hw - baseline)});
      }
    }
    std::printf("[%s done in %.0fs]\n", task.name.c_str(), total.seconds());
  }

  table.print("Fig 5: absolute robustness gain vs crossbar NF");
  return 0;
}

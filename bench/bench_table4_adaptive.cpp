// Table IV reproduction: Hardware-in-Loop adaptive attacks.
//
//   Ensemble BB PGD (iter=30, paper eps 4/255): attacker distills
//     surrogates by querying the network on their crossbar (64x64_100k);
//     transferred to all three targets.
//   Square Attack (queries=30, paper eps 8/255): attacker runs the random
//     search directly against the network deployed on 32x32_100k; the
//     final images transfer to the three targets.
//   White Box PGD (iter=30): "Hardware-in-Loop" gradients — forward on the
//     attacker's crossbar (64x64_100k), backward ideal at the recorded
//     activations; transferred to the three targets.
//
// Bold cells in the paper (attacker model == target model) correspond here
// to the matching column; deltas are vs the digital baseline under the
// same adversarial images.
#include "attack/ensemble_bb.h"
#include "attack/pgd.h"
#include "attack/square.h"
#include "bench_util.h"

namespace {

using namespace nvm;

/// Row = evaluate one adversarial set on baseline + the 3 targets.
std::vector<std::string> transfer_row(const std::string& name,
                                      core::PreparedTask& prepared,
                                      std::vector<bench::NamedModel>& models,
                                      std::span<const Tensor> adv,
                                      std::span<const std::int64_t> labels) {
  std::vector<std::string> cells{name};
  const float baseline =
      core::accuracy(core::plain_forward(prepared.network), adv, labels);
  cells.push_back(core::fmt(baseline));
  for (auto& nm : models)
    cells.push_back(core::with_delta(
        bench::hw_accuracy(prepared, nm.model, adv, labels), baseline));
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_table4_adaptive");
  auto models = bench::paper_models();
  auto attacker_bb = xbar::make_geniex("64x64_100k");   // Ensemble BB + WB
  auto attacker_sq = xbar::make_geniex("32x32_100k");   // Square

  core::TablePrinter table({"Attack (attacker's xbar)", "Baseline",
                            "target 64x64_300k", "target 32x32_100k",
                            "target 64x64_100k"});

  for (core::Task task : {core::task_scifar10(), core::task_scifar100(),
                          core::task_simagenet()}) {
    trace::Span total("bench/total");
    const bool imagenet = task.name == "SIMAGENET";
    core::PreparedTask prepared = core::prepare(task);
    const std::int64_t n_eval = env_int(
        "NVMROBUST_T4_N", scaled(imagenet ? 12 : 24, 500));
    auto images = prepared.eval_images(n_eval);
    auto labels = prepared.eval_labels(n_eval);
    auto calib = prepared.calibration_images();

    // --- Ensemble BB adaptive (CIFAR tasks, paper eps 4/255). ---
    if (!imagenet) {
      trace::Span sw("bench/stage");
      const auto n_query = static_cast<std::size_t>(std::min<std::int64_t>(
          scaled(300, 4000),
          static_cast<std::int64_t>(prepared.dataset.train_images.size())));
      attack::EnsembleBbOptions bb_opt;
      bb_opt.epochs =
          static_cast<std::int64_t>(env_int("NVMROBUST_SURR_EPOCHS", 12));
      attack::SurrogateEnsemble surrogates = [&] {
        puma::HwDeployment dep(prepared.network, attacker_bb, calib);
        return attack::SurrogateEnsemble::distill(
            [&](const Tensor& x) {
              return prepared.network.forward(x, nn::Mode::Eval);
            },
            {prepared.dataset.train_images.data(), n_query},
            task.data_spec.classes, bb_opt,
            "adaptive_" + task.name + "_64x64_100k");
      }();
      auto ensemble = surrogates.attack_model();
      attack::PgdOptions opt;
      opt.epsilon = task.scaled_eps(4.0f);
      opt.iters = 30;
      std::vector<Tensor> adv = core::craft_pgd(*ensemble, images, labels, opt);
      table.add_row(transfer_row(
          task.name + " Ensemble BB " + bench::eps_label(task, 4) +
              " (64x64_100k)",
          prepared, models, adv, labels));
      bench::progress(task.name + " adaptive ensemble BB", sw.seconds());
    }

    // --- Square adaptive: random search against the 32x32_100k hardware,
    //     30 queries (paper's crossbar-emulation budget). ---
    {
      trace::Span sw("bench/stage");
      std::vector<Tensor> adv;
      {
        puma::HwDeployment dep(prepared.network, attacker_sq, calib);
        attack::NetworkAttackModel victim(prepared.network);
        attack::SquareOptions opt;
        opt.epsilon = task.scaled_eps(8.0f);
        opt.max_queries = 30;
        adv = core::craft_square(victim, images, labels, opt);
      }
      table.add_row(transfer_row(
          task.name + " Square BB " + bench::eps_label(task, 8) +
              " q=30 (32x32_100k)",
          prepared, models, adv, labels));
      bench::progress(task.name + " adaptive square", sw.seconds());
    }

    // --- White-box hardware-in-loop PGD (attacker on 64x64_100k). ---
    const std::vector<float> wb_eps =
        imagenet ? std::vector<float>{1.0f} : std::vector<float>{1.0f, 2.0f};
    for (float eps : wb_eps) {
      if (imagenet && eps > 1.0f) continue;
      trace::Span sw("bench/stage");
      std::vector<Tensor> adv;
      {
        puma::HwDeployment dep(prepared.network, attacker_bb, calib);
        attack::NetworkAttackModel attacker(prepared.network);
        attack::PgdOptions opt;
        opt.epsilon = task.scaled_eps(eps);
        opt.iters = 30;
        adv = core::craft_pgd(attacker, images, labels, opt);
      }
      table.add_row(transfer_row(
          task.name + " WB HIL PGD " + bench::eps_label(task, eps) +
              " (64x64_100k)",
          prepared, models, adv, labels));
      bench::progress(task.name + " hardware-in-loop WB", sw.seconds());
    }
    std::printf("[%s done in %.0fs]\n", task.name.c_str(), total.seconds());
  }

  table.print("Table IV: Hardware-in-Loop adaptive attacks");
  return 0;
}

// Extension experiment: device faults and conductance drift vs intrinsic
// robustness.
//
// The paper argues the crossbar's analog non-idealities degrade adversarial
// perturbations along with clean signal. Real NVM dies add a second
// degradation axis the paper holds fixed: manufacturing faults (stuck-at
// cells, line opens) and retention drift. This bench sweeps both axes with
// xbar::FaultModel wrapped around the GENIEx surrogate and reports clean
// vs transferred-PGD accuracy, plus the failure-handling counters (solver
// non-convergence, surrogate fallbacks) that tell us how hard the fault
// pattern pushed the models off their nominal operating regime.
#include "bench_util.h"
#include "core/fault_sweep.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_ext_faults");
  core::Task task = core::task_scifar10();
  core::PreparedTask prepared = core::prepare(task);
  auto base = xbar::make_geniex("64x64_100k");

  core::FaultSweepOptions opt;
  opt.n_eval = env_int("NVMROBUST_FAULT_N", scaled(32, 500));
  opt.stuck_rates = {0.0, 0.01, 0.02, 0.05};
  opt.pgd_eps_255 = 2.0f;
  opt.pgd_iters = 30;

  // Axis 1: stuck-at fault rate (fresh die per rate, no drift).
  auto by_rate = core::run_fault_sweep(prepared, base, opt);
  core::print_fault_sweep(task, "geniex/64x64_100k", opt, by_rate);

  // Axis 2: retention drift at a fixed 1% stuck rate.
  core::FaultSweepOptions drift = opt;
  drift.stuck_rates = {0.01};
  drift.drift_times = {0.0, 1e3, 1e5, 1e7};
  auto by_drift = core::run_fault_sweep(prepared, base, drift);
  core::print_fault_sweep(task, "geniex/64x64_100k", drift, by_drift);

  std::printf(
      "\nExpected shape: clean accuracy decays monotonically with fault rate\n"
      "and drift time; transferred PGD accuracy converges toward clean as\n"
      "degradation drowns the crafted perturbation (cf. paper SS IV-B, the\n"
      "non-ideality-as-defense effect). Nonzero fallback counters mean the\n"
      "surrogate left its trust envelope and the fast-noise model served\n"
      "those MVMs instead.\n");
  return 0;
}

// Fig. 2 reproduction: non-adaptive Ensemble Black-Box PGD (iter=30) on
// SCIFAR10 and SCIFAR100 — adversarial accuracy vs epsilon.
//
// The attacker queries the victim on *accurate digital hardware*, reads
// logits, distills three surrogate ResNets (depths 8/14/20 here, the
// scaled analogue of the paper's ResNet-10/20/32), and attacks their
// stack-parallel ensemble; the images transfer to the baseline, the three
// crossbar deployments, and the two defenses.
#include "attack/ensemble_bb.h"
#include "attack/pgd.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_fig2_ensemble_bb");
  const std::vector<float> paper_eps = {2.0f, 4.0f, 8.0f};
  const std::int64_t n_eval = env_int("NVMROBUST_FIG2_N", scaled(32, 500));
  auto models = bench::paper_models();

  for (core::Task task : {core::task_scifar10(), core::task_scifar100()}) {
    trace::Span total("bench/total");
    core::PreparedTask prepared = core::prepare(task);
    auto images = prepared.eval_images(n_eval);
    auto labels = prepared.eval_labels(n_eval);

    trace::Span distill_sw("bench/distill");
    attack::EnsembleBbOptions bb_opt;
    bb_opt.epochs =
        static_cast<std::int64_t>(env_int("NVMROBUST_SURR_EPOCHS", 12));
    attack::SurrogateEnsemble surrogates = attack::SurrogateEnsemble::distill(
        [&](const Tensor& x) {
          return prepared.network.forward(x, nn::Mode::Eval);
        },
        prepared.dataset.train_images, task.data_spec.classes, bb_opt,
        "nonadaptive_" + task.name);
    bench::progress("surrogate distillation", distill_sw.seconds());
    auto ensemble = surrogates.attack_model();

    std::vector<std::vector<Tensor>> adv_sets;
    trace::Span craft("bench/craft");
    for (float eps : paper_eps) {
      attack::PgdOptions opt;
      opt.epsilon = task.scaled_eps(eps);
      opt.iters = 30;
      adv_sets.push_back(core::craft_pgd(*ensemble, images, labels, opt));
    }
    bench::progress("ensemble PGD crafting", craft.seconds());

    std::printf(
        "\n== Fig 2: non-adaptive Ensemble BB PGD (iter=30), %s (%s), n=%lld ==\n",
        task.name.c_str(), task.paper_analogue.c_str(),
        static_cast<long long>(images.size()));
    std::printf("x-axis: paper eps/255");
    for (float eps : paper_eps) std::printf(", %.0f", eps);
    std::printf("\n");

    auto eval_series = [&](const std::string& name,
                           const std::function<float(std::span<const Tensor>)>& fn) {
      std::vector<float> series;
      for (const auto& adv : adv_sets)
        series.push_back(fn({adv.data(), adv.size()}));
      core::print_series(name, series);
    };
    eval_series("baseline", [&](std::span<const Tensor> adv) {
      return core::accuracy(core::plain_forward(prepared.network), adv, labels);
    });
    for (auto& nm : models)
      eval_series(nm.name, [&](std::span<const Tensor> adv) {
        return bench::hw_accuracy(prepared, nm.model, adv, labels);
      });
    eval_series("4bit_input", [&](std::span<const Tensor> adv) {
      return bench::bw_defense_accuracy(prepared.network, adv, labels);
    });
    eval_series("sap", [&](std::span<const Tensor> adv) {
      return bench::sap_defense_accuracy(prepared.network, adv, labels);
    });
    std::printf("[%s done in %.0fs]\n", task.name.c_str(), total.seconds());
  }
  return 0;
}

// Serving-layer benchmark: the micro-batching inference service under
// deterministic open-loop Poisson traffic at a few offered loads, with
// max_batch 1 (no aggregation) vs 32 (PR 4 multi-RHS path) side by side.
//
// Reported per config: achieved throughput, exact p50/p99 request latency,
// shed count, and mean micro-batch size; plus the saturation speedup of
// batched over unbatched serving (the headline number — it must be > 1
// for the batching scheduler to pay for itself). Labels are cross-checked
// across every config: the determinism contract says batch composition
// never changes a reply.
#include <chrono>

#include "bench_util.h"
#include "puma/plan.h"
#include "serve/serve.h"
#include "xbar/fast_noise.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest =
      bench::bench_manifest(argc, argv, "bench_serve");

  const xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  manifest.set_xbar(cfg);
  auto model = std::make_shared<xbar::FastNoiseModel>(cfg);

  const std::int64_t classes = 16, feat = 128;
  Rng wrng(derive_seed(1, 0));
  Tensor w({classes, feat});
  for (auto& v : w.data()) v = static_cast<float>(wrng.uniform(-1.0, 1.0));
  serve::TiledLinearBackend backend(w, model, puma::HwConfig{}, 1.0f);

  const std::int64_t n = scaled(300, 1500);
  Rng xrng(derive_seed(1, 1));
  std::vector<Tensor> requests;
  requests.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor x({feat});
    for (auto& v : x.data()) v = static_cast<float>(xrng.uniform());
    requests.push_back(std::move(x));
  }

  core::TablePrinter table({"offered rps", "max_batch", "ok", "shed",
                            "throughput rps", "p50 ms", "p99 ms",
                            "mean batch"});

  // rate 0 = saturation (back-to-back submission, scheduler-limited).
  const double rates[] = {1000.0, 4000.0, 0.0};
  const std::int64_t batches[] = {1, 32};
  std::vector<std::int64_t> ref_labels;
  double sat_rps[2] = {0.0, 0.0};
  bool deterministic = true;

  for (const double rate : rates) {
    for (std::size_t bi = 0; bi < 2; ++bi) {
      serve::ServeOptions opt;
      opt.max_batch = batches[bi];
      opt.flush_us = 200;
      opt.queue_capacity = n;  // admit everything: compare like with like
      serve::Server server(backend, opt);

      serve::TrafficOptions traffic;
      traffic.rate_rps = rate;
      traffic.seed = derive_seed(1, 2);
      const serve::TrafficReport rep =
          serve::run_open_loop(server, requests, traffic);
      server.drain();

      if (ref_labels.empty()) {
        ref_labels = rep.labels;
      } else if (rep.labels != ref_labels) {
        deterministic = false;
      }
      if (rate == 0.0) sat_rps[bi] = rep.throughput_rps;

      const std::string rate_label =
          rate > 0.0 ? std::to_string(static_cast<std::int64_t>(rate))
                     : "saturation";
      table.add_row({rate_label, std::to_string(batches[bi]),
                     std::to_string(rep.ok), std::to_string(rep.shed),
                     core::fmt(static_cast<float>(rep.throughput_rps)),
                     core::fmt(static_cast<float>(rep.p50_ms)),
                     core::fmt(static_cast<float>(rep.p99_ms)),
                     core::fmt(static_cast<float>(rep.mean_batch))});

      const std::string key =
          "b" + std::to_string(batches[bi]) + "_" +
          (rate > 0.0 ? "rate" + rate_label : rate_label) + "_";
      manifest.add_result(key + "throughput_rps", rep.throughput_rps);
      manifest.add_result(key + "p50_ms", rep.p50_ms);
      manifest.add_result(key + "p99_ms", rep.p99_ms);
      manifest.add_result(key + "shed", static_cast<double>(rep.shed));
    }
  }

  table.print("Micro-batching service, fast-noise " + cfg.name + " backend, " +
              std::to_string(classes) + "x" + std::to_string(feat) +
              " classifier, " + std::to_string(n) + " requests");

  // Plan A/B on the serve matmul stage: the same batched logits_block the
  // scheduler issues per micro-batch, with the execution plan off (the
  // interpreter) and on (fused chunk kernels). Bit-identical outputs; the
  // time ratio is the fused-path overhead reduction the perf gate holds
  // at >= 1.2x (plan_matmul_speedup).
  {
    Rng brng(derive_seed(1, 3));
    Tensor xb({feat, 32});
    for (auto& v : xb.data()) v = static_cast<float>(brng.uniform());
    const int reps = static_cast<int>(scaled(60, 400));
    double ms[2] = {0.0, 0.0};
    for (int arm = 0; arm < 2; ++arm) {
      puma::ScopedPlanForTests gate(arm == 1);
      (void)backend.tiled().plan();  // compile outside the timed region
      (void)backend.logits_block(xb);  // warm up
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < reps; ++r) (void)backend.logits_block(xb);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      ms[arm] = dt.count() * 1e3 / reps;
    }
    const double plan_speedup = ms[1] > 0.0 ? ms[0] / ms[1] : 0.0;
    std::printf("serve matmul stage: interp %.3f ms, plan %.3f ms (%.2fx)\n",
                ms[0], ms[1], plan_speedup);
    manifest.add_result("plan_matmul_interp_ms", ms[0]);
    manifest.add_result("plan_matmul_plan_ms", ms[1]);
    manifest.add_result("plan_matmul_speedup", plan_speedup);
  }

  const double speedup = sat_rps[0] > 0.0 ? sat_rps[1] / sat_rps[0] : 0.0;
  std::printf("saturation throughput: batch1 %.0f rps, batch32 %.0f rps "
              "(%.2fx)\n",
              sat_rps[0], sat_rps[1], speedup);
  manifest.add_result("saturation_speedup", speedup);
  manifest.set_note("determinism",
                    deterministic ? "labels identical across configs"
                                  : "LABEL MISMATCH across configs");

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: served labels changed with batch/load config\n");
    return 1;
  }
  if (speedup <= 1.0) {
    std::fprintf(stderr,
                 "FAIL: batched serving (%.0f rps) did not beat batch-1 "
                 "(%.0f rps)\n",
                 sat_rps[1], sat_rps[0]);
    return 1;
  }
  return 0;
}

// Table III reproduction: non-adaptive attack summary for all three
// tasks. Rows per task:
//   Clean
//   Ensemble (Black Box) PGD  eps=4/255 paper, iter=30   (CIFAR tasks)
//   Square Attack (Black Box) eps=4/255 paper             (all tasks)
//   White Box PGD             eps=1/255 and 2/255 paper, iter=30
// Columns: baseline (digital), the 3 NVM crossbar models, and the
// defenses (4-bit input for all; SAP for CIFAR tasks, Random Pad for the
// ImageNet task), each cell as "value (delta vs baseline)".
#include "attack/ensemble_bb.h"
#include "attack/pgd.h"
#include "attack/square.h"
#include "bench_util.h"

namespace {

using namespace nvm;

/// Evaluates one adversarial (or clean) image set across all columns.
std::vector<std::string> eval_row(
    const std::string& row_name, core::PreparedTask& prepared,
    std::vector<bench::NamedModel>& models, std::span<const Tensor> images,
    std::span<const std::int64_t> labels, bool imagenet_defenses) {
  std::vector<std::string> cells{row_name};
  const float baseline =
      core::accuracy(core::plain_forward(prepared.network), images, labels);
  cells.push_back(core::fmt(baseline));
  for (auto& nm : models)
    cells.push_back(core::with_delta(
        bench::hw_accuracy(prepared, nm.model, images, labels), baseline));
  cells.push_back(core::with_delta(
      bench::bw_defense_accuracy(prepared.network, images, labels), baseline));
  if (imagenet_defenses) {
    cells.push_back(core::with_delta(
        bench::randpad_defense_accuracy(prepared.network, images, labels),
        baseline));
  } else {
    cells.push_back(core::with_delta(
        bench::sap_defense_accuracy(prepared.network, images, labels),
        baseline));
  }
  return cells;
}

void run_task(const core::Task& task, std::vector<bench::NamedModel>& models) {
  trace::Span total("bench/total");
  core::PreparedTask prepared = core::prepare(task);
  const bool imagenet = task.name == "SIMAGENET";
  const std::int64_t n_eval =
      env_int("NVMROBUST_T3_N", scaled(imagenet ? 32 : 40, 1000));
  auto images = prepared.eval_images(n_eval);
  auto labels = prepared.eval_labels(n_eval);

  core::TablePrinter table(
      {"Attack", "Baseline", "64x64_300k", "32x32_100k", "64x64_100k",
       "4-bit input", imagenet ? "Random Pad" : "SAP"});

  // Clean row (uses the larger test set for a stable clean number).
  auto clean_imgs = prepared.eval_images(scaled(128, 1000));
  auto clean_lbls = prepared.eval_labels(scaled(128, 1000));
  table.add_row(eval_row("Clean", prepared, models, clean_imgs, clean_lbls,
                         imagenet));

  // Ensemble black-box PGD at paper eps 4/255 (CIFAR tasks only, as in
  // the paper's Table III).
  if (!imagenet) {
    trace::Span sw("bench/stage");
    attack::EnsembleBbOptions bb_opt;
    bb_opt.epochs = static_cast<std::int64_t>(
        env_int("NVMROBUST_SURR_EPOCHS", 12));
    attack::SurrogateEnsemble surrogates = attack::SurrogateEnsemble::distill(
        [&](const Tensor& x) {
          return prepared.network.forward(x, nn::Mode::Eval);
        },
        prepared.dataset.train_images, task.data_spec.classes, bb_opt,
        "nonadaptive_" + task.name);
    auto ensemble = surrogates.attack_model();
    attack::PgdOptions opt;
    opt.epsilon = task.scaled_eps(4.0f);
    opt.iters = 30;
    std::vector<Tensor> adv = core::craft_pgd(*ensemble, images, labels, opt);
    bench::progress("ensemble BB crafting", sw.seconds());
    table.add_row(eval_row("Ensemble BB PGD " + bench::eps_label(task, 4),
                           prepared, models, adv, labels, imagenet));
  }

  // Square attack (black box) at paper eps 4/255, querying the digital
  // implementation (non-adaptive).
  {
    trace::Span sw("bench/stage");
    attack::NetworkAttackModel victim(prepared.network);
    attack::SquareOptions opt;
    opt.epsilon = task.scaled_eps(4.0f);
    opt.max_queries = env_int("NVMROBUST_SQ_QUERIES",
                              scaled(imagenet ? 60 : 100, 1000));
    std::vector<Tensor> adv = core::craft_square(victim, images, labels, opt);
    bench::progress("square crafting", sw.seconds());
    char name[96];
    std::snprintf(name, sizeof name, "Square BB %s q=%lld",
                  bench::eps_label(task, 4).c_str(),
                  static_cast<long long>(opt.max_queries));
    table.add_row(eval_row(name, prepared, models, adv, labels, imagenet));
  }

  // White-box PGD at paper eps 1/255 and 2/255.
  for (float eps : {1.0f, 2.0f}) {
    trace::Span sw("bench/stage");
    attack::NetworkAttackModel attacker(prepared.network);
    attack::PgdOptions opt;
    opt.epsilon = task.scaled_eps(eps);
    opt.iters = 30;
    std::vector<Tensor> adv = core::craft_pgd(attacker, images, labels, opt);
    bench::progress("white-box crafting", sw.seconds());
    table.add_row(eval_row("White Box PGD " + bench::eps_label(task, eps),
                           prepared, models, adv, labels, imagenet));
  }

  char title[160];
  std::snprintf(title, sizeof title,
                "Table III: %s (%s), attack samples=%lld",
                task.name.c_str(), task.paper_analogue.c_str(),
                static_cast<long long>(images.size()));
  table.print(title);
  std::printf("[%s done in %.0fs]\n", task.name.c_str(), total.seconds());
}

}  // namespace

int main(int argc, char** argv) {
  nvm::core::RunManifest manifest =
      nvm::bench::bench_manifest(argc, argv, "bench_table3_summary");
  auto models = nvm::bench::paper_models();
  for (const auto& task :
       {nvm::core::task_scifar10(), nvm::core::task_scifar100(),
        nvm::core::task_simagenet()})
    run_task(task, models);
  return 0;
}

// Serving-cluster benchmark: open-loop Poisson traffic through
// nvm::serve::Cluster at shard counts {1, 2, 4}, plus a dispatch-policy
// comparison at the widest count and an overload leg with a small queue.
//
// Reported per config: aggregate throughput, exact p50/p99 latency, the
// worst per-shard p99 (tail latency hides in the slowest shard, not the
// aggregate — see EXPERIMENTS.md), and the shed fraction under overload.
// Labels are cross-checked across every shard count and policy: routing
// decides WHERE a request runs, never what it answers, so any label drift
// is a determinism bug and the bench exits nonzero.
//
// On a single-core host the shard counts time-slice one core, so the
// aggregate saturation headline tracks the single-shard number; the
// committed BENCH_serve_cluster.json gates relative regressions on the
// same class of machine rather than asserting multi-core scaling.
#include <string>

#include "bench_util.h"
#include "serve/cluster.h"
#include "xbar/fast_noise.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest =
      bench::bench_manifest(argc, argv, "bench_serve_cluster");

  const xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  manifest.set_xbar(cfg);
  auto model = std::make_shared<xbar::FastNoiseModel>(cfg);

  const std::int64_t classes = 16, feat = 128;
  Rng wrng(derive_seed(1, 0));
  Tensor w({classes, feat});
  for (auto& v : w.data()) v = static_cast<float>(wrng.uniform(-1.0, 1.0));

  const std::int64_t n = scaled(300, 1500);
  Rng xrng(derive_seed(1, 1));
  std::vector<Tensor> requests;
  requests.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor x({feat});
    for (auto& v : x.data()) v = static_cast<float>(xrng.uniform());
    requests.push_back(std::move(x));
  }
  const std::vector<std::string> tenants = {"primary"};

  auto make_cluster = [&](std::int64_t shards, serve::DispatchPolicy policy,
                          std::int64_t queue_cap) {
    serve::ClusterOptions opt;
    opt.shards = shards;
    opt.policy = policy;
    opt.threads_per_shard = 1;
    opt.serve.max_batch = 32;
    opt.serve.flush_us = 200;
    opt.serve.queue_capacity = queue_cap;
    auto cluster = std::make_unique<serve::Cluster>(opt);
    // Multi-tenant residency: a second model stays resident throughout so
    // the saturation numbers are measured with realistic tenancy, even
    // though the traffic below targets one tenant (single-tenant traffic
    // keeps the determinism cross-check exact).
    cluster->add_model(serve::tiled_linear_spec("primary", w, model,
                                                puma::HwConfig{}, 1.0f));
    cluster->add_model(serve::tiled_linear_spec("secondary", w, model,
                                                puma::HwConfig{}, 1.0f));
    return cluster;
  };

  auto run = [&](serve::Cluster& cluster, double rate) {
    serve::TrafficOptions traffic;
    traffic.rate_rps = rate;
    traffic.seed = derive_seed(1, 2);
    return run_cluster_open_loop(cluster, tenants, requests, traffic);
  };

  auto shard_p99_max = [](const serve::ClusterTrafficReport& rep) {
    double worst = 0.0;
    for (const auto& s : rep.shards)
      if (s.ok > 0 && s.p99_ms > worst) worst = s.p99_ms;
    return worst;
  };

  core::TablePrinter table({"shards", "policy", "offered rps", "ok", "shed",
                            "agg rps", "p99 ms", "shard p99 max ms"});
  std::vector<std::int64_t> ref_labels;
  bool deterministic = true;
  auto check_labels = [&](const serve::ClusterTrafficReport& rep) {
    if (ref_labels.empty()) ref_labels = rep.total.labels;
    else if (rep.total.labels != ref_labels) deterministic = false;
  };

  // Saturation vs shard count (least_loaded, the default policy).
  double agg_best = 0.0, s1_rps = 0.0;
  for (const std::int64_t shards : {1, 2, 4}) {
    auto cluster =
        make_cluster(shards, serve::DispatchPolicy::LeastLoaded, n);
    const serve::ClusterTrafficReport rep = run(*cluster, 0.0);
    cluster->drain();
    check_labels(rep);
    const double p99_shard = shard_p99_max(rep);
    if (shards == 1) s1_rps = rep.total.throughput_rps;
    if (rep.total.throughput_rps > agg_best)
      agg_best = rep.total.throughput_rps;
    table.add_row({std::to_string(shards), "least_loaded", "saturation",
                   std::to_string(rep.total.ok),
                   std::to_string(rep.total.shed),
                   core::fmt(static_cast<float>(rep.total.throughput_rps)),
                   core::fmt(static_cast<float>(rep.total.p99_ms)),
                   core::fmt(static_cast<float>(p99_shard))});
    const std::string key = "s" + std::to_string(shards) + "_";
    manifest.add_result(key + "saturation_rps", rep.total.throughput_rps);
    manifest.add_result(key + "p99_ms", rep.total.p99_ms);
    manifest.add_result(key + "shard_p99_ms_max", p99_shard);
  }
  manifest.add_result("aggregate_saturation_rps", agg_best);
  manifest.add_result("cluster_speedup_vs_s1",
                      s1_rps > 0.0 ? agg_best / s1_rps : 0.0);

  // Policy comparison at 4 shards: same traffic, same answers, different
  // placement.
  const serve::DispatchPolicy policies[] = {
      serve::DispatchPolicy::RoundRobin,
      serve::DispatchPolicy::ConsistentHash,
      serve::DispatchPolicy::LeastLoaded,
  };
  for (const serve::DispatchPolicy policy : policies) {
    auto cluster = make_cluster(4, policy, n);
    const serve::ClusterTrafficReport rep = run(*cluster, 0.0);
    cluster->drain();
    check_labels(rep);
    table.add_row({"4", to_string(policy), "saturation",
                   std::to_string(rep.total.ok),
                   std::to_string(rep.total.shed),
                   core::fmt(static_cast<float>(rep.total.throughput_rps)),
                   core::fmt(static_cast<float>(rep.total.p99_ms)),
                   core::fmt(static_cast<float>(shard_p99_max(rep)))});
    manifest.add_result(std::string("policy_") + to_string(policy) + "_rps",
                        rep.total.throughput_rps);
  }

  // Overload leg: offer ~2.5x the measured aggregate saturation into
  // small bounded queues; admission control must shed the excess instead
  // of letting latency run away, and every request still gets a reply.
  const double offered = 2.5 * (agg_best > 0.0 ? agg_best : 1000.0);
  {
    auto cluster = make_cluster(4, serve::DispatchPolicy::LeastLoaded, 16);
    const serve::ClusterTrafficReport rep = run(*cluster, offered);
    cluster->drain();
    const double shed_frac =
        static_cast<double>(rep.total.shed) / static_cast<double>(n);
    table.add_row({"4", "least_loaded",
                   std::to_string(static_cast<std::int64_t>(offered)),
                   std::to_string(rep.total.ok),
                   std::to_string(rep.total.shed),
                   core::fmt(static_cast<float>(rep.total.throughput_rps)),
                   core::fmt(static_cast<float>(rep.total.p99_ms)),
                   core::fmt(static_cast<float>(shard_p99_max(rep)))});
    manifest.add_result("overload_offered_rps", offered);
    manifest.add_result("overload_served_rps", rep.total.throughput_rps);
    manifest.add_result("overload_shed_frac", shed_frac);
    manifest.add_result("overload_p99_ms", rep.total.p99_ms);
    if (rep.total.ok + rep.total.shed + rep.total.timed_out != n) {
      std::fprintf(stderr, "FAIL: overload leg lost requests\n");
      return 1;
    }
  }

  table.print("Serving cluster, fast-noise " + cfg.name + " backend, " +
              std::to_string(classes) + "x" + std::to_string(feat) +
              " classifier, " + std::to_string(n) +
              " requests, 2 tenants resident");
  std::printf("aggregate saturation: %.0f rps (%.2fx single shard)\n",
              agg_best, s1_rps > 0.0 ? agg_best / s1_rps : 0.0);
  manifest.set_note("determinism",
                    deterministic
                        ? "labels identical across shard counts and policies"
                        : "LABEL MISMATCH across cluster configs");

  if (!deterministic) {
    std::fprintf(stderr,
                 "FAIL: served labels changed with shard count or policy\n");
    return 1;
  }
  return 0;
}

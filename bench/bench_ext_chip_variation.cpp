// Extension experiment (paper §V discussion): chip-to-chip variation
// further hinders attack transferability between analog devices.
//
// Setup: the same 64x64_100k crossbar design is "fabricated" as several
// chips, each with its own deterministic device-programming variation
// (xbar::VariationModel). A Hardware-in-Loop white-box attacker crafts
// PGD images on chip 0; the images are evaluated on chip 0 itself, on
// sibling chips (same design, different devices), and on the digital
// baseline. Also includes a random-noise control at the same budget.
#include "attack/noise.h"
#include "attack/pgd.h"
#include "bench_util.h"
#include "xbar/variation.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_ext_chip_variation");
  core::Task task = core::task_scifar10();
  core::PreparedTask prepared = core::prepare(task);
  const std::int64_t n_eval = env_int("NVMROBUST_VAR_N", scaled(32, 500));
  auto images = prepared.eval_images(n_eval);
  auto labels = prepared.eval_labels(n_eval);
  auto calib = prepared.calibration_images();

  auto base = xbar::make_geniex("64x64_100k");
  auto chip = [&](std::uint64_t seed) {
    xbar::VariationOptions opt;
    opt.chip_seed = seed;
    return std::make_shared<xbar::VariationModel>(base, opt);
  };

  attack::PgdOptions pgd;
  pgd.epsilon = task.scaled_eps(2.0f);
  pgd.iters = 30;

  // Craft on chip 0 with hardware-in-loop gradients.
  std::vector<Tensor> adv;
  {
    puma::HwDeployment dep(prepared.network, chip(0), calib);
    attack::NetworkAttackModel attacker(prepared.network);
    adv = core::craft_pgd(attacker, images, labels, pgd);
  }

  // Random-noise control at the same l_inf budget.
  std::vector<Tensor> noise;
  Rng noise_rng(77);
  for (const Tensor& img : images)
    noise.push_back(attack::random_sign_noise(img, pgd.epsilon, noise_rng));

  core::TablePrinter table({"Evaluation target", "clean", "HIL PGD (chip 0)",
                            "random noise"});
  auto row = [&](const std::string& name,
                 const std::shared_ptr<const xbar::MvmModel>& model) {
    float clean, a, nz;
    if (model == nullptr) {
      clean = core::accuracy(core::plain_forward(prepared.network), images,
                             labels);
      a = core::accuracy(core::plain_forward(prepared.network),
                         std::span<const Tensor>(adv.data(), adv.size()),
                         labels);
      nz = core::accuracy(core::plain_forward(prepared.network),
                          std::span<const Tensor>(noise.data(), noise.size()),
                          labels);
    } else {
      puma::HwDeployment dep(prepared.network, model, calib);
      clean = core::accuracy(core::plain_forward(prepared.network), images,
                             labels);
      a = core::accuracy(core::plain_forward(prepared.network),
                         std::span<const Tensor>(adv.data(), adv.size()),
                         labels);
      nz = core::accuracy(core::plain_forward(prepared.network),
                          std::span<const Tensor>(noise.data(), noise.size()),
                          labels);
    }
    table.add_row({name, core::fmt(clean), core::fmt(a), core::fmt(nz)});
  };

  row("digital baseline", nullptr);
  row("chip 0 (attacker's die)", chip(0));
  row("chip 1 (same design)", chip(1));
  row("chip 2 (same design)", chip(2));
  row("no-variation reference", base);

  char title[128];
  std::snprintf(title, sizeof title,
                "Extension: chip-to-chip variation vs HIL transfer "
                "(64x64_100k, SCIFAR10, PGD eps=%.0f/255, n=%lld)",
                static_cast<double>(pgd.epsilon * 255),
                static_cast<long long>(images.size()));
  table.print(title);
  std::printf(
      "\nExpected shape: the attack is strongest on the die it was crafted\n"
      "on; sibling dies recover part of the accuracy (paper SS V: chip-to-chip\n"
      "variations 'may further hinder the transferability of attacks').\n");
  return 0;
}

// Table I reproduction: Non-ideality Factor of the three crossbar models.
//
// Paper values: 64x64_300k -> 0.07, 32x32_100k -> 0.14, 64x64_100k -> 0.26.
// We measure NF on the circuit solver (HSPICE stand-in), on the trained
// GENIEx surrogate, and on the analytical fast-noise model, over random
// (G, V) patterns representative of sliced DNN workloads.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/env.h"
#include "core/report.h"
#include "xbar/fast_noise.h"
#include "xbar/model_zoo.h"
#include "xbar/nf.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_table1_nf");
  const std::map<std::string, double> paper_nf = {
      {"64x64_300k", 0.07}, {"32x32_100k", 0.14}, {"64x64_100k", 0.26}};

  xbar::NfOptions nf_opt;
  nf_opt.samples = scaled(32, 128);

  core::TablePrinter table({"Crossbar Model", "Size", "R_ON (ohm)",
                            "NF paper", "NF solver", "NF geniex",
                            "NF fast-noise", "cols measured"});
  trace::Span watch("bench/total");
  for (const auto& name : xbar::paper_model_names()) {
    const xbar::CrossbarConfig cfg = xbar::preset(name);

    xbar::CircuitSolverModel solver(cfg);
    const xbar::NfResult nf_solver = xbar::measure_nf(solver, nf_opt);

    auto geniex = xbar::make_geniex(name);
    const xbar::NfResult nf_geniex = xbar::measure_nf(*geniex, nf_opt);

    xbar::FastNoiseModel fast(cfg);
    const xbar::NfResult nf_fast = xbar::measure_nf(fast, nf_opt);

    char size[32], ron[32];
    std::snprintf(size, sizeof size, "%lldx%lld",
                  static_cast<long long>(cfg.rows),
                  static_cast<long long>(cfg.cols));
    std::snprintf(ron, sizeof ron, "%.0fk", cfg.r_on / 1000.0);
    manifest.add_result("nf_solver_" + name, nf_solver.nf);
    manifest.add_result("nf_geniex_" + name, nf_geniex.nf);
    manifest.add_result("nf_fast_noise_" + name, nf_fast.nf);
    table.add_row({name, size, ron, core::fmt(paper_nf.at(name)),
                   core::fmt(static_cast<float>(nf_solver.nf)),
                   core::fmt(static_cast<float>(nf_geniex.nf)),
                   core::fmt(static_cast<float>(nf_fast.nf)),
                   std::to_string(nf_solver.columns_measured)});
  }
  table.print("Table I: crossbar models and non-ideality factors");
  std::printf("elapsed: %.1fs\n", watch.seconds());
  return 0;
}

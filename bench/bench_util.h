// Shared plumbing for the experiment harnesses: crossbar model set,
// hardware-accuracy evaluation, defended forwards, and attack crafting
// with progress reporting.
//
// All harnesses run at reduced sample counts on one core; REPRO_FULL=1
// raises them (common/env.h). Trained targets, GENIEx fits, and distilled
// surrogates are cached under ./repro_cache, so only the first run pays
// for training.
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/trace.h"
#include "core/evaluator.h"
#include "core/report.h"
#include "core/tasks.h"
#include "defense/defenses.h"
#include "puma/hw_network.h"
#include "xbar/model_zoo.h"

namespace nvm::bench {

/// The three Table I crossbar models with cached GENIEx surrogates.
struct NamedModel {
  std::string name;
  std::shared_ptr<xbar::GeniexModel> model;
};

inline std::vector<NamedModel> paper_models() {
  std::vector<NamedModel> out;
  for (const std::string& name : xbar::paper_model_names())
    out.push_back({name, xbar::make_geniex(name)});
  return out;
}

/// Accuracy of `net` deployed on `model` over an image set. Deployment is
/// scoped: the network is restored afterwards.
inline float hw_accuracy(core::PreparedTask& prepared,
                         const std::shared_ptr<xbar::GeniexModel>& model,
                         std::span<const Tensor> images,
                         std::span<const std::int64_t> labels) {
  auto calib = prepared.calibration_images();
  puma::HwDeployment deployment(prepared.network, model, calib);
  return core::accuracy(core::plain_forward(prepared.network), images, labels);
}

/// Accuracy behind the 4-bit input bit-width-reduction defense [35].
inline float bw_defense_accuracy(nn::Network& net,
                                 std::span<const Tensor> images,
                                 std::span<const std::int64_t> labels) {
  core::ForwardFn fn = [&net](const Tensor& x) {
    return net.forward(defense::reduce_bit_width(x, 4), nn::Mode::Eval);
  };
  return core::accuracy(fn, images, labels);
}

/// Accuracy behind stochastic activation pruning [20] (attach, eval,
/// detach).
inline float sap_defense_accuracy(nn::Network& net,
                                  std::span<const Tensor> images,
                                  std::span<const std::int64_t> labels) {
  auto handle = defense::attach_sap(net, defense::SapOptions{});
  const float acc =
      core::accuracy(core::plain_forward(net), images, labels);
  net.set_conv_eval_hooks(nullptr);
  return acc;
}

/// Accuracy behind random resize + pad [25] (ImageNet-style defense).
inline float randpad_defense_accuracy(nn::Network& net,
                                      std::span<const Tensor> images,
                                      std::span<const std::int64_t> labels) {
  auto rng = std::make_shared<Rng>(171);
  core::ForwardFn fn = [&net, rng](const Tensor& x) {
    defense::RandomPadOptions opt;
    return net.forward(defense::random_resize_pad(x, opt, *rng),
                       nn::Mode::Eval);
  };
  return core::accuracy(fn, images, labels);
}

/// Run manifest for a bench binary: --metrics-out PATH on the command
/// line wins, NVM_METRICS_OUT next; inert when neither is set. Construct
/// it first thing in main() so metric baselines are taken before any work.
inline core::RunManifest bench_manifest(int argc, char** argv,
                                        const std::string& name) {
  std::string path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--metrics-out") == 0) path = argv[i + 1];
  return core::RunManifest::from_env(name, path);
}

/// Progress line helper for long crafting phases.
inline void progress(const std::string& what, double seconds) {
  std::printf("  [%s done in %.0fs]\n", what.c_str(), seconds);
  std::fflush(stdout);
}

/// Formats an epsilon in 1/255 units, annotated with the paper-equivalent
/// value given the task's eps_scale.
inline std::string eps_label(const core::Task& task, float paper_eps_255) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "eps=%.0f/255 (paper %.0f/255)",
                static_cast<double>(paper_eps_255 * task.eps_scale),
                static_cast<double>(paper_eps_255));
  return buf;
}

}  // namespace nvm::bench

// Fig. 4 reproduction: non-adaptive White-Box PGD (iter=30) on SCIFAR10
// and SCIFAR100 — adversarial accuracy vs attack epsilon for the baseline
// (accurate digital), the three NVM crossbar models, and the two defenses
// (4-bit input bit-width reduction, SAP).
//
// The attacker holds the exact weights but computes gradients assuming
// ideal digital MVMs (paper §III-C1c). Epsilons are the paper's
// {0.5, 1, 2, 4}/255 scaled by the task's eps_scale (see EXPERIMENTS.md).
#include "attack/pgd.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_fig4_whitebox");
  const std::vector<float> paper_eps = {0.5f, 1.0f, 2.0f, 4.0f};
  const std::int64_t n_eval = env_int("NVMROBUST_FIG4_N", scaled(40, 500));
  auto models = bench::paper_models();

  for (core::Task task : {core::task_scifar10(), core::task_scifar100()}) {
    trace::Span total("bench/total");
    core::PreparedTask prepared = core::prepare(task);
    auto images = prepared.eval_images(n_eval);
    auto labels = prepared.eval_labels(n_eval);

    // Craft one adversarial set per epsilon against the digital network.
    attack::NetworkAttackModel attacker(prepared.network);
    std::vector<std::vector<Tensor>> adv_sets;
    trace::Span craft("bench/craft");
    for (float eps : paper_eps) {
      attack::PgdOptions opt;
      opt.epsilon = task.scaled_eps(eps);
      opt.iters = 30;
      adv_sets.push_back(core::craft_pgd(attacker, images, labels, opt));
    }
    bench::progress("PGD crafting " + task.name, craft.seconds());

    std::printf("\n== Fig 4: non-adaptive White-Box PGD (iter=30), %s (%s), n=%lld ==\n",
                task.name.c_str(), task.paper_analogue.c_str(),
                static_cast<long long>(images.size()));
    std::printf("x-axis: paper eps/255");
    for (float eps : paper_eps) std::printf(", %.1f", eps);
    std::printf("\n");

    auto eval_series = [&](const std::string& name,
                           const std::function<float(std::span<const Tensor>)>& fn) {
      std::vector<float> series;
      for (const auto& adv : adv_sets)
        series.push_back(fn({adv.data(), adv.size()}));
      core::print_series(name, series);
    };

    eval_series("baseline", [&](std::span<const Tensor> adv) {
      return core::accuracy(core::plain_forward(prepared.network), adv, labels);
    });
    for (auto& nm : models) {
      eval_series(nm.name, [&](std::span<const Tensor> adv) {
        return bench::hw_accuracy(prepared, nm.model, adv, labels);
      });
    }
    eval_series("4bit_input", [&](std::span<const Tensor> adv) {
      return bench::bw_defense_accuracy(prepared.network, adv, labels);
    });
    eval_series("sap", [&](std::span<const Tensor> adv) {
      return bench::sap_defense_accuracy(prepared.network, adv, labels);
    });
    std::printf("[%s done in %.0fs]\n", task.name.c_str(), total.seconds());
  }
  return 0;
}

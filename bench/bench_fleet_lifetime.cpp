// Fleet-lifetime policy shoot-out: is scheduled recalibration worth it?
//
// Runs the SAME fleet (same seed, same dies, same drift clocks) under all
// four recalibration policies and compares accuracy per unit
// recalibration energy (FleetResult::score). The two informed policies
// must strictly beat both degenerate baselines:
//
//   * never    — accuracy decays with drift; zero maintenance spend.
//   * always   — re-programs every chip every epoch; peak accuracy at an
//                absurd energy bill (maintenance intensity 1.0).
//   * threshold / budgeted — refit early (cheap per-layer gain fitted on
//                the aged silicon), re-program late, retire hopeless dies.
//
// Exits nonzero if either informed policy fails to beat either baseline,
// so CI catches a regression in the scheduler or the drift/refit physics.
// Emits per-policy scores, curves, and costs into the --metrics-out
// manifest (BENCH_fleet.json via scripts/run_benches.sh).
#include "bench_util.h"
#include "fleet/simulator.h"
#include "xbar/fast_noise.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest =
      bench::bench_manifest(argc, argv, "bench_fleet_lifetime");
  core::Task task = core::task_scifar10();
  core::PreparedTask prepared = core::prepare(task);
  auto base = std::make_shared<xbar::FastNoiseModel>(
      xbar::make_solver("64x64_100k")->config());

  fleet::FleetOptions opt;
  opt.n_chips = env_int("NVM_FLEET_BENCH_CHIPS", scaled(5, 12));
  opt.epochs = env_int("NVM_FLEET_BENCH_EPOCHS", scaled(4, 6));
  // Whole-fleet evaluation: the policy comparison is exact, not sampled.
  opt.sample_per_epoch = 0;
  opt.dt_s = 2.0;
  opt.seed = static_cast<std::uint64_t>(env_int("NVM_FLEET_SEED", 7));
  opt.n_eval = env_int("NVM_FLEET_BENCH_N", scaled(24, 96));
  opt.run_pgd = true;
  opt.pgd_eps_255 = 2.0f;
  opt.pgd_iters = 10;

  fleet::SlaConfig sla;  // defaults: 30% clean floor, 90% availability

  const fleet::PolicyKind policies[] = {
      fleet::PolicyKind::Never, fleet::PolicyKind::Always,
      fleet::PolicyKind::Threshold, fleet::PolicyKind::BudgetedGreedy};
  std::vector<fleet::FleetResult> results;
  for (const fleet::PolicyKind kind : policies) {
    fleet::SchedulerConfig sched;
    sched.policy = kind;
    sched.budget_actions_per_epoch = 2;
    fleet::FleetSimulator sim(prepared, base, opt);
    results.push_back(sim.run(sched, sla));
    fleet::print_fleet_result(task, "fast_noise/64x64_100k", results.back());
  }

  core::TablePrinter table({"policy", "mean clean %", "mean pgd %",
                            "recal cost (fleet units)", "sla violations",
                            "score"});
  for (const fleet::FleetResult& r : results) {
    const char* name =
        fleet::RecalibrationScheduler::policy_name(r.scheduler.policy);
    table.add_row({name, core::fmt(r.mean_clean), core::fmt(r.mean_pgd),
                   core::fmt(static_cast<float>(r.normalized_recal_cost)),
                   std::to_string(r.total_sla_violations),
                   core::fmt(static_cast<float>(r.score))});
    const std::string p = std::string("fleet/") + name + "/";
    manifest.add_result(p + "score", r.score);
    manifest.add_result(p + "mean_clean", r.mean_clean);
    manifest.add_result(p + "mean_pgd", r.mean_pgd);
    manifest.add_result(p + "normalized_recal_cost", r.normalized_recal_cost);
    manifest.add_result(p + "maintenance_intensity", r.maintenance_intensity);
    manifest.add_result(p + "sla_violations",
                        static_cast<double>(r.total_sla_violations));
    manifest.add_result(p + "reprograms",
                        static_cast<double>(r.total_reprograms));
    manifest.add_result(p + "refits", static_cast<double>(r.total_refits));
    std::vector<double> clean, pgd;
    for (const fleet::EpochSummary& e : r.epochs) {
      clean.push_back(e.mean_clean);
      pgd.push_back(e.mean_pgd);
    }
    manifest.add_series(p + "clean_acc", std::move(clean));
    manifest.add_series(p + "pgd_acc", std::move(pgd));
  }
  manifest.add_result("fleet/n_chips", static_cast<double>(opt.n_chips));
  manifest.add_result("fleet/epochs", static_cast<double>(opt.epochs));
  manifest.add_result("fleet/seed", static_cast<double>(opt.seed));
  manifest.set_xbar(base->config());
  table.print("Fleet lifetime: accuracy per unit recalibration energy");

  const fleet::FleetResult& never = results[0];
  const fleet::FleetResult& always = results[1];
  std::printf(
      "\nExpected shape: never decays toward the SLA floor for free; always\n"
      "holds peak accuracy at maintenance intensity 1.0; threshold and\n"
      "budgeted buy back most of the accuracy with targeted refits at a\n"
      "fraction of always' energy, so their score (quality / (1 +\n"
      "maintenance intensity)) must beat both baselines.\n");
  int failures = 0;
  for (std::size_t i = 2; i < results.size(); ++i) {
    const fleet::FleetResult& r = results[i];
    const char* name =
        fleet::RecalibrationScheduler::policy_name(r.scheduler.policy);
    if (!(r.score > never.score)) {
      std::printf("FAIL: %s score %.4f does not beat never %.4f\n", name,
                  r.score, never.score);
      ++failures;
    }
    if (!(r.score > always.score)) {
      std::printf("FAIL: %s score %.4f does not beat always %.4f\n", name,
                  r.score, always.score);
      ++failures;
    }
  }
  if (failures == 0)
    std::printf("OK: threshold and budgeted strictly beat both baselines.\n");
  return failures == 0 ? 0 : 1;
}

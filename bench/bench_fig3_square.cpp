// Fig. 3 reproduction: non-adaptive Square Attack (black box) on all three
// tasks — adversarial accuracy vs epsilon for the baseline, the three NVM
// crossbar models, and the per-task defenses.
//
// The attacker queries the *digital* implementation's logits (paper
// §III-C1b); crafted images are then evaluated on each deployment. Being
// gradient-free, this attack isolates the "modified inference" component
// of the intrinsic robustness.
#include "attack/square.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace nvm;
  core::RunManifest manifest = bench::bench_manifest(argc, argv, "bench_fig3_square");
  const std::vector<float> paper_eps = {4.0f, 8.0f, 16.0f};
  auto models = bench::paper_models();

  for (core::Task task : {core::task_scifar10(), core::task_scifar100(),
                          core::task_simagenet()}) {
    trace::Span total("bench/total");
    const bool imagenet = task.name == "SIMAGENET";
    const std::int64_t n_eval =
        env_int("NVMROBUST_FIG3_N", scaled(imagenet ? 20 : 32, 500));
    core::PreparedTask prepared = core::prepare(task);
    auto images = prepared.eval_images(n_eval);
    auto labels = prepared.eval_labels(n_eval);

    attack::NetworkAttackModel victim(prepared.network);
    std::vector<std::vector<Tensor>> adv_sets;
    trace::Span craft("bench/craft");
    const std::int64_t queries = env_int(
        "NVMROBUST_SQ_QUERIES", scaled(imagenet ? 60 : 100, 1000));
    for (float eps : paper_eps) {
      attack::SquareOptions opt;
      opt.epsilon = task.scaled_eps(eps);
      opt.max_queries = queries;
      adv_sets.push_back(core::craft_square(victim, images, labels, opt));
    }
    bench::progress("square crafting", craft.seconds());

    std::printf(
        "\n== Fig 3: non-adaptive Square Attack (q=%lld), %s (%s), n=%lld ==\n",
        static_cast<long long>(queries), task.name.c_str(),
        task.paper_analogue.c_str(), static_cast<long long>(images.size()));
    std::printf("x-axis: paper eps/255");
    for (float eps : paper_eps) std::printf(", %.0f", eps);
    std::printf("\n");

    auto eval_series = [&](const std::string& name,
                           const std::function<float(std::span<const Tensor>)>& fn) {
      std::vector<float> series;
      for (const auto& adv : adv_sets)
        series.push_back(fn({adv.data(), adv.size()}));
      core::print_series(name, series);
    };
    eval_series("baseline", [&](std::span<const Tensor> adv) {
      return core::accuracy(core::plain_forward(prepared.network), adv, labels);
    });
    for (auto& nm : models)
      eval_series(nm.name, [&](std::span<const Tensor> adv) {
        return bench::hw_accuracy(prepared, nm.model, adv, labels);
      });
    eval_series("4bit_input", [&](std::span<const Tensor> adv) {
      return bench::bw_defense_accuracy(prepared.network, adv, labels);
    });
    if (imagenet) {
      eval_series("random_pad", [&](std::span<const Tensor> adv) {
        return bench::randpad_defense_accuracy(prepared.network, adv, labels);
      });
    } else {
      eval_series("sap", [&](std::span<const Tensor> adv) {
        return bench::sap_defense_accuracy(prepared.network, adv, labels);
      });
    }
    std::printf("[%s done in %.0fs]\n", task.name.c_str(), total.seconds());
  }
  return 0;
}

#!/usr/bin/env python3
"""Performance-regression gate over committed BENCH_*.json run manifests.

Two modes:

  perf_gate.py --baseline DIR --candidate DIR [--tol-scale F] [--strict]
      Compare candidate manifests against baselines metric-by-metric with
      per-metric tolerance bands (SPECS below). Exit 1 on any regression.
      Non-strict mode skips manifests/keys missing from the candidate set
      (so a quickstart-only candidate run gates just the quickstart spec);
      --strict fails on anything missing.

  perf_gate.py --validate-trace FILE
      Structurally validate a Chrome-trace JSON export (trace.cpp
      flush_events): a traceEvents array whose B/E duration events are
      balanced per (pid, tid) with monotone non-decreasing timestamps.

Tolerance bands are deliberately wide: the benches run on shared CI
hardware, and this gate exists to catch step-change regressions (a
disabled SIMD tier, a solver schedule falling off its fast path, batching
losing its saturation win), not single-digit-percent noise. Scale all
bands with --tol-scale or NVM_PERF_GATE_TOL (flag wins; e.g. 2.0 doubles
every band for a noisy machine).

No third-party imports — standard library only.
"""

import argparse
import json
import os
import sys

# One spec per gated number:
#   (file, section, key, direction, band)
# direction:
#   "higher" — bigger is better; candidate must be >= baseline * (1 - band)
#   "lower"  — smaller is better; candidate must be <= baseline * (1 + band)
#   "min"    — structural floor; candidate must be >= band (baseline unused,
#              tolerance scaling does not apply)
SPECS = [
    # Kernel + solver throughput (BENCH_mvm_perf.json).
    ("BENCH_mvm_perf.json", "metrics", "bench/simd/gflops", "higher", 0.30),
    ("BENCH_mvm_perf.json", "metrics",
     "bench/warm_start/sweeps_per_matmul_cold", "lower", 0.10),
    ("BENCH_mvm_perf.json", "metrics",
     "bench/warm_start/sweeps_per_matmul_warm", "lower", 0.10),
    ("BENCH_mvm_perf.json", "metrics",
     "bench/multi_rhs/multi_b128_cols_per_sec", "higher", 0.35),
    ("BENCH_mvm_perf.json", "metrics",
     "bench/solver/ordering_redblack_ms", "lower", 0.60),
    # Fused execution plans: the plan path must beat the interpreter by
    # >= 1.2x on the batched fast-noise matmul — a structural floor, not a
    # baseline comparison, so a landed fusion can never silently regress
    # into a slowdown.
    ("BENCH_mvm_perf.json", "metrics",
     "bench/plan/tiled_matmul_speedup", "min", 1.2),
    # Serving layer (BENCH_serve.json).
    ("BENCH_serve.json", "results",
     "b32_saturation_throughput_rps", "higher", 0.35),
    ("BENCH_serve.json", "results", "saturation_speedup", "higher", 0.30),
    ("BENCH_serve.json", "results", "plan_matmul_speedup", "min", 1.2),
    # Sharded cluster (BENCH_serve_cluster.json): aggregate saturation and
    # the worst per-shard tail; shed fraction under 2.5x overload is rate-
    # coupled, so it gets the widest band.
    ("BENCH_serve_cluster.json", "results",
     "aggregate_saturation_rps", "higher", 0.35),
    ("BENCH_serve_cluster.json", "results",
     "s4_shard_p99_ms_max", "lower", 0.75),
    ("BENCH_serve_cluster.json", "results",
     "overload_shed_frac", "lower", 0.60),
    # Fleet policy scores (BENCH_fleet.json): accuracy-per-cost, nearly
    # deterministic, so tight-ish bands.
    ("BENCH_fleet.json", "results", "fleet/threshold/score", "higher", 0.25),
    ("BENCH_fleet.json", "results", "fleet/budgeted/score", "higher", 0.25),
    # Quickstart smoke (BENCH_quickstart.json): structure + accuracy.
    ("BENCH_quickstart.json", "metrics", "solver/solves", "min", 1),
    ("BENCH_quickstart.json", "metrics", "puma/tiled/matmuls", "min", 1),
    ("BENCH_quickstart.json", "results", "hw_accuracy", "higher", 0.10),
]


def load_manifest(directory, name):
    path = os.path.join(directory, name)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def lookup(manifest, section, key):
    value = manifest.get(section, {}).get(key)
    if isinstance(value, dict):  # histogram delta: gate on the count
        value = value.get("count")
    return value


def run_gate(baseline_dir, candidate_dir, tol_scale, strict):
    failures, checked, skipped = [], 0, []
    for fname, section, key, direction, band in SPECS:
        base = load_manifest(baseline_dir, fname)
        cand = load_manifest(candidate_dir, fname)
        if cand is None or (base is None and direction != "min"):
            skipped.append(f"{fname} missing ({'candidate' if cand is None else 'baseline'})")
            if strict:
                failures.append(f"{fname}: manifest missing")
            continue
        cv = lookup(cand, section, key)
        bv = lookup(base, section, key) if base is not None else None
        if cv is None or (direction != "min" and bv is None):
            skipped.append(f"{fname}:{key} missing")
            if strict:
                failures.append(f"{fname}: {section}/{key} missing")
            continue
        checked += 1
        if direction == "min":
            ok = cv >= band
            detail = f"{cv:g} >= floor {band:g}"
        elif direction == "higher":
            limit = bv * (1.0 - band * tol_scale)
            ok = cv >= limit
            detail = f"{cv:g} vs baseline {bv:g} (limit {limit:g}, -{band * tol_scale:.0%})"
        else:  # lower
            limit = bv * (1.0 + band * tol_scale)
            ok = cv <= limit
            detail = f"{cv:g} vs baseline {bv:g} (limit {limit:g}, +{band * tol_scale:.0%})"
        status = "ok  " if ok else "FAIL"
        print(f"  [{status}] {fname} {section}/{key}: {detail}")
        if not ok:
            failures.append(f"{fname}: {section}/{key} regressed ({detail})")
    for s in skipped:
        print(f"  [skip] {s}")
    print(f"perf gate: {checked} checked, {len(skipped)} skipped, "
          f"{len(failures)} failed (tol scale {tol_scale:g})")
    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    if checked == 0:
        print("perf gate: nothing checked", file=sys.stderr)
        return 1
    return 0


def validate_trace(path):
    """Structural Chrome-trace validation; returns 0 iff well-formed."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        print("trace: traceEvents is not a list", file=sys.stderr)
        return 1
    stacks = {}  # (pid, tid) -> [name, ...] open B events
    last_ts = {}  # (pid, tid) -> last timestamp seen
    n_b = n_e = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in ("B", "E"):
            continue  # metadata/counter events are fine, just not checked
        for field in ("name", "ts", "pid", "tid"):
            if field not in e:
                print(f"trace: event {i} missing '{field}'", file=sys.stderr)
                return 1
        key = (e["pid"], e["tid"])
        ts = e["ts"]
        if key in last_ts and ts < last_ts[key]:
            print(f"trace: event {i} time goes backwards on {key}: "
                  f"{ts} < {last_ts[key]}", file=sys.stderr)
            return 1
        last_ts[key] = ts
        stack = stacks.setdefault(key, [])
        if ph == "B":
            n_b += 1
            stack.append(e["name"])
        else:
            n_e += 1
            if not stack:
                print(f"trace: event {i} 'E' with empty stack on {key}",
                      file=sys.stderr)
                return 1
            top = stack.pop()
            if top != e["name"]:
                print(f"trace: event {i} 'E' name '{e['name']}' does not "
                      f"match open span '{top}' on {key}", file=sys.stderr)
                return 1
    open_spans = {k: v for k, v in stacks.items() if v}
    if open_spans:
        print(f"trace: unclosed spans at EOF: {open_spans}", file=sys.stderr)
        return 1
    threads = len(last_ts)
    print(f"trace ok: {n_b} B / {n_e} E events balanced across "
          f"{threads} thread(s)")
    if n_b == 0:
        print("trace: no duration events at all", file=sys.stderr)
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", help="directory with baseline BENCH_*.json")
    ap.add_argument("--candidate", help="directory with candidate BENCH_*.json")
    ap.add_argument("--tol-scale", type=float, default=None,
                    help="scale every tolerance band (default: "
                         "NVM_PERF_GATE_TOL or 1.0)")
    ap.add_argument("--strict", action="store_true",
                    help="fail on missing manifests/keys instead of skipping")
    ap.add_argument("--validate-trace", metavar="FILE",
                    help="validate a Chrome-trace JSON export instead of gating")
    args = ap.parse_args()

    if args.validate_trace:
        return validate_trace(args.validate_trace)

    if not args.baseline or not args.candidate:
        ap.error("--baseline and --candidate are required (or --validate-trace)")
    tol = args.tol_scale
    if tol is None:
        tol = float(os.environ.get("NVM_PERF_GATE_TOL", "1.0"))
    if tol <= 0:
        ap.error("--tol-scale must be positive")
    return run_gate(args.baseline, args.candidate, tol, args.strict)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Runs the fast benchmark set with --metrics-out and collects one
# BENCH_<name>.json run manifest per binary at the repo root (crossbar
# config, accuracy/NF results, health deltas, metric values, span
# timings — see DESIGN.md §10 for the schema).
#
# Only benches that finish in ~minutes are included; the figure/table
# reproduction benches (bench_fig*, bench_table3/4, ...) accept the same
# --metrics-out flag when run by hand.
#
# Usage: scripts/run_benches.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
if [[ ! -d "$BUILD/bench" ]]; then
  echo "error: $BUILD/bench not found — build the release preset first" >&2
  exit 1
fi

run() {
  local name="$1"
  shift
  echo "== $name =="
  "$@" --metrics-out "BENCH_${name}.json"
  echo "   -> BENCH_${name}.json"
}

run quickstart "$BUILD/examples/nvmrobust_cli" quickstart
run table1_nf "$BUILD/bench/bench_table1_nf"
run cost_model "$BUILD/bench/bench_cost_model"
# Microbenchmarks: restrict to the sub-second MVM set so the script stays
# fast; drop the filter for the full scaling curves. The filter includes
# the multi-RHS family (looped vs mvm_multi items/sec at block 1/8/32/128,
# plus bench/simd/gflops from the widest ideal block), the solver
# warm-start A/B (sweeps_per_matmul with streaming off/on), and the
# red-black vs lexicographic sweep-schedule A/B, and the execution-plan
# interpreter-vs-fused A/B (bench/plan/tiled_matmul_speedup).
run mvm_perf "$BUILD/bench/bench_mvm_perf" \
  --benchmark_filter='BM_IdealMvm|BM_FastNoiseMvm|BM_TiledMatmul/0|BM_TiledMatmulPlan|BM_SolverTiledMatmulWarmStart|BM_CircuitSolverOrdering' \
  --benchmark_min_time=0.05
# Serving layer: throughput + exact p50/p99 latency at 2 offered loads and
# saturation, max_batch 1 vs 32; exits nonzero if batching fails to beat
# batch-1 or a reply changes with batch composition.
run serve "$BUILD/bench/bench_serve"
# Sharded serving cluster: saturation vs shard count, dispatch-policy
# comparison, and an overload/shed leg; exits nonzero if routed labels
# drift across configs or the overload leg loses requests.
run serve_cluster "$BUILD/bench/bench_serve_cluster"
# Fleet lifetime: the same aging fleet under all four recalibration
# policies; exits nonzero unless threshold/budgeted beat both the never
# and always baselines on accuracy per unit recalibration energy.
run fleet "$BUILD/bench/bench_fleet_lifetime"

echo "== bench manifests =="
ls -l BENCH_*.json

# Gate the fresh numbers against the committed baselines before they are
# (re)committed: catches a regression at refresh time rather than in the
# next CI run. NVM_PERF_GATE_TOL widens the bands on noisy machines.
if command -v python3 >/dev/null 2>&1; then
  echo "== perf gate vs committed baselines =="
  GATE_DIR="$(mktemp -d /tmp/nvmrobust_benches.XXXXXX)"
  trap 'rm -rf "$GATE_DIR"' EXIT
  cp BENCH_*.json "$GATE_DIR/"
  git checkout -- BENCH_*.json 2>/dev/null || true
  python3 scripts/perf_gate.py --baseline . --candidate "$GATE_DIR" || {
    echo "perf gate FAILED — fresh manifests kept in $GATE_DIR" >&2
    trap - EXIT
    exit 1
  }
  cp "$GATE_DIR"/BENCH_*.json .
fi

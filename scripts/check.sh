#!/usr/bin/env bash
# Pre-merge check: tier-1 build + tests, then the same suite under
# ASan+UBSan (catches the memory/UB class of failures the fault-injection
# and failure-handling paths are designed to survive).
#
# Usage: scripts/check.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: Release build + ctest =="
cmake --preset release >/dev/null
cmake --build --preset release -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--skip-sanitize" ]]; then
  echo "== sanitizer pass skipped =="
  exit 0
fi

echo "== sanitizer: ASan+UBSan build + ctest =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== all checks passed =="

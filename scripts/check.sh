#!/usr/bin/env bash
# Pre-merge check: tier-1 build + tests, then the same suite under
# ASan+UBSan (catches the memory/UB class of failures the fault-injection
# and failure-handling paths are designed to survive).
#
# Usage: scripts/check.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: Release build + ctest =="
cmake --preset release >/dev/null
cmake --build --preset release -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

# Re-run the suite under each compiled-in SIMD dispatch tier: the kernel
# layer promises identical behavior under NVM_SIMD=scalar and every vector
# tier the host can run (avx2 / avx512 on x86 with the cpuinfo flags, neon
# on aarch64). Unsupported legs are skipped cleanly, so the same script
# works on any host.
echo "== tier-1: ctest under NVM_SIMD=scalar =="
NVM_SIMD=scalar ctest --test-dir build --output-on-failure -j "$JOBS"
if grep -q '\bavx2\b' /proc/cpuinfo 2>/dev/null; then
  echo "== tier-1: ctest under NVM_SIMD=avx2 =="
  NVM_SIMD=avx2 ctest --test-dir build --output-on-failure -j "$JOBS"
else
  echo "== tier-1: NVM_SIMD=avx2 leg skipped (host has no AVX2) =="
fi
if grep -q '\bavx512f\b' /proc/cpuinfo 2>/dev/null \
    && grep -q '\bavx512bw\b' /proc/cpuinfo 2>/dev/null \
    && grep -q '\bavx512dq\b' /proc/cpuinfo 2>/dev/null \
    && grep -q '\bavx512vl\b' /proc/cpuinfo 2>/dev/null; then
  echo "== tier-1: ctest under NVM_SIMD=avx512 =="
  NVM_SIMD=avx512 ctest --test-dir build --output-on-failure -j "$JOBS"
else
  echo "== tier-1: NVM_SIMD=avx512 leg skipped (host lacks AVX-512 F/BW/DQ/VL) =="
fi
if [[ "$(uname -m)" == "aarch64" || "$(uname -m)" == "arm64" ]]; then
  echo "== tier-1: ctest under NVM_SIMD=neon =="
  NVM_SIMD=neon ctest --test-dir build --output-on-failure -j "$JOBS"
else
  echo "== tier-1: NVM_SIMD=neon leg skipped (not an AArch64 host) =="
fi

echo "== tier-1: observability smoke (quickstart manifest) =="
MANIFEST=/tmp/nvmrobust_check_manifest.json
rm -f "$MANIFEST"
./build/examples/nvmrobust_cli quickstart --metrics-out "$MANIFEST"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$MANIFEST" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["run"] == "cli/quickstart", m["run"]
assert m["metrics"]["solver/solves"] > 0, "solver/solves must be nonzero"
assert m["xbar"]["rows"] > 0
print("manifest ok: %d metrics, %d spans" % (len(m["metrics"]), len(m["spans"])))
EOF
else
  # Fallback: grep-level sanity when python3 is unavailable.
  grep -q '"run": "cli/quickstart"' "$MANIFEST"
  grep -q '"solver/solves": [1-9]' "$MANIFEST"
  echo "manifest ok (grep check)"
fi

# Seconds-long serving smoke: open-loop traffic against the micro-batching
# service; the run must shed nothing at this modest load and must write a
# manifest carrying the serve metrics.
serve_smoke() {
  local cli="$1" manifest="$2"
  rm -f "$manifest"
  "$cli" serve --requests 200 --rate 1500 --queue 1024 --metrics-out "$manifest"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$manifest" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["run"] == "cli/serve", m["run"]
assert m["results"]["requests_shed"] == 0, "serve smoke must not shed"
assert m["results"]["requests_ok"] == 200, m["results"]["requests_ok"]
assert m["results"]["throughput_rps"] > 0
assert m["metrics"]["serve/batches"] > 0
print("serve manifest ok: %.0f rps, p99 %.3f ms"
      % (m["results"]["throughput_rps"], m["results"]["latency_p99_ms"]))
EOF
  else
    grep -q '"run": "cli/serve"' "$manifest"
    grep -q '"requests_shed": 0' "$manifest"
    echo "serve manifest ok (grep check)"
  fi
}

echo "== tier-1: serving smoke (micro-batching service) =="
serve_smoke ./build/examples/nvmrobust_cli /tmp/nvmrobust_check_serve.json

# Sharded-cluster smoke: routed open-loop traffic across two shards at a
# load well below saturation must shed nothing, and round-robin dispatch
# must provably exercise both shards (least_loaded would park this light
# load on shard 0 via its lowest-index tie-break).
cluster_smoke() {
  local cli="$1" manifest="$2"
  rm -f "$manifest"
  "$cli" serve_cluster --requests 240 --rate 1200 --shards 2 \
    --policy round_robin --queue 1024 --metrics-out "$manifest"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$manifest" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["run"] == "cli/serve_cluster", m["run"]
r = m["results"]
assert r["requests_shed"] == 0, "cluster smoke must not shed below saturation"
assert r["requests_ok"] == 240, r["requests_ok"]
assert r["shard0_ok"] > 0 and r["shard1_ok"] > 0, \
    "round-robin must serve from both shards: %r" % r
assert r["shard0_ok"] + r["shard1_ok"] == r["requests_ok"]
print("cluster manifest ok: %.0f rps, shard split %d/%d"
      % (r["throughput_rps"], r["shard0_ok"], r["shard1_ok"]))
EOF
  else
    grep -q '"run": "cli/serve_cluster"' "$manifest"
    grep -q '"requests_shed": 0' "$manifest"
    echo "cluster manifest ok (grep check)"
  fi
}

# Drain-under-fire leg: submitter threads race cluster.drain(); the CLI
# itself exits nonzero if any request goes unaccounted.
cluster_drain_smoke() {
  local cli="$1" manifest="$2"
  rm -f "$manifest"
  "$cli" serve_cluster --requests 160 --shards 2 --rate 0 --drain_race 1 \
    --metrics-out "$manifest"
  if command -v python3 >/dev/null 2>&1; then
    python3 - "$manifest" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["results"]["all_accounted"] == 1, m["results"]
print("cluster drain race ok: %d ok / %d shutdown"
      % (m["results"]["requests_ok"], m["results"]["requests_shutdown"]))
EOF
  fi
}

echo "== tier-1: serving-cluster smoke (2 shards, round-robin) =="
cluster_smoke ./build/examples/nvmrobust_cli /tmp/nvmrobust_check_cluster.json

# Fleet-lifetime smoke: the physics and the scheduler must both show
# through at toy scale. Whole-fleet evaluation (--sample 0) keeps the
# per-epoch means exact, so the assertions are deterministic.
fleet_smoke_never() {
  local cli="$1" manifest="$2"
  rm -f "$manifest"
  "$cli" fleet_sim --policy never --chips 5 --epochs 4 --sample 0 \
    --n 24 --dt 2 --metrics-out "$manifest"
  python3 - "$manifest" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
acc = m["series"]["fleet/clean_acc"]
assert all(b <= a for a, b in zip(acc, acc[1:])), \
    "never-policy fleet accuracy must decline monotonically: %r" % acc
assert acc[0] - acc[-1] >= 4.0, "drift should cost several points: %r" % acc
assert m["results"]["fleet/total_reprograms"] == 0
assert m["results"]["fleet/total_recal_energy_nj"] == 0
print("fleet never-policy ok: clean %r, zero maintenance" % acc)
EOF
}

fleet_smoke_always() {
  local cli="$1" manifest="$2"
  rm -f "$manifest"
  "$cli" fleet_sim --policy always --chips 3 --epochs 2 --sample 0 \
    --n 16 --dt 2 --metrics-out "$manifest"
  python3 - "$manifest" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
r = m["results"]
assert r["fleet/total_sla_violations"] == 0, \
    "always-policy fleet must hold the SLA: %r" % r
assert r["fleet/total_reprograms"] == r["fleet/n_chips"] * r["fleet/epochs"]
assert r["fleet/maintenance_intensity"] == 1.0, r["fleet/maintenance_intensity"]
print("fleet always-policy ok: %d reprograms, zero SLA violations"
      % r["fleet/total_reprograms"])
EOF
}

if command -v python3 >/dev/null 2>&1; then
  echo "== tier-1: fleet lifetime smoke (never + always policies) =="
  fleet_smoke_never ./build/examples/nvmrobust_cli /tmp/nvmrobust_check_fleet_never.json
  fleet_smoke_always ./build/examples/nvmrobust_cli /tmp/nvmrobust_check_fleet_always.json
else
  echo "== tier-1: fleet smoke skipped (needs python3 for manifest checks) =="
fi

# Perf-regression gate (scripts/perf_gate.py): the committed BENCH_*.json
# baselines must gate cleanly against themselves, the gate must actually
# catch an injected regression (negative test), and a fresh quickstart-
# scale candidate run must pass its structural + accuracy specs.
if command -v python3 >/dev/null 2>&1; then
  echo "== tier-1: perf gate (self-compare + negative test + fresh quickstart) =="
  python3 scripts/perf_gate.py --baseline . --candidate . --strict

  GATE_TMP="$(mktemp -d /tmp/nvmrobust_perf_gate.XXXXXX)"
  trap 'rm -rf "$GATE_TMP"' EXIT
  cp BENCH_*.json "$GATE_TMP/"
  python3 - "$GATE_TMP" <<'EOF'
import json, sys
path = sys.argv[1] + "/BENCH_mvm_perf.json"
d = json.load(open(path))
d["metrics"]["bench/simd/gflops"] *= 0.4  # far outside every band
json.dump(d, open(path, "w"))
EOF
  if python3 scripts/perf_gate.py --baseline . --candidate "$GATE_TMP" \
      >/dev/null 2>&1; then
    echo "FAIL: perf gate accepted an injected 60% gflops regression" >&2
    exit 1
  fi
  echo "perf gate negative test ok: injected regression rejected"

  # Fresh candidate at quickstart scale, gated non-strict so only the
  # quickstart specs apply (the heavyweight benches are not re-run here).
  rm -f "$GATE_TMP"/BENCH_*.json
  ./build/examples/nvmrobust_cli quickstart \
    --metrics-out "$GATE_TMP/BENCH_quickstart.json" >/dev/null
  python3 scripts/perf_gate.py --baseline . --candidate "$GATE_TMP"
else
  echo "== tier-1: perf gate skipped (needs python3) =="
fi

# Execution-plan legs (DESIGN.md §17). The plan path (NVM_PLAN=1, the
# default) must be bit-identical to the interpreter (NVM_PLAN=0): the
# quickstart accuracy and every served label must match exactly. The serve
# parameters are the shed-free smoke parameters (big queue, modest rate),
# so the labels checksum covers identical request sets on both legs.
plan_identity_check() {
  local cli="$1" tag="$2"
  local m0=/tmp/nvmrobust_check_plan0.json m1=/tmp/nvmrobust_check_plan1.json
  rm -f "$m0" "$m1"
  NVM_PLAN=0 "$cli" quickstart --metrics-out "$m0" >/dev/null
  NVM_PLAN=1 "$cli" quickstart --metrics-out "$m1" >/dev/null
  python3 - "$m0" "$m1" <<'EOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
assert a["results"]["hw_accuracy"] == b["results"]["hw_accuracy"], \
    "quickstart accuracy differs between interpreter and plan: %r vs %r" % (
        a["results"]["hw_accuracy"], b["results"]["hw_accuracy"])
assert b["metrics"].get("plan/executes", 0) > 0, \
    "NVM_PLAN=1 quickstart never executed a plan"
assert "plan/executes" not in a["metrics"] or a["metrics"]["plan/executes"] == 0
print("plan identity ok (quickstart): hw_accuracy %.2f on both paths"
      % a["results"]["hw_accuracy"])
EOF
  rm -f "$m0" "$m1"
  NVM_PLAN=0 "$cli" serve --requests 200 --rate 1500 --queue 1024 \
    --metrics-out "$m0" >/dev/null
  NVM_PLAN=1 "$cli" serve --requests 200 --rate 1500 --queue 1024 \
    --metrics-out "$m1" >/dev/null
  python3 - "$m0" "$m1" <<'EOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
assert a["results"]["requests_shed"] == 0 and b["results"]["requests_shed"] == 0
assert a["results"]["labels_checksum"] == b["results"]["labels_checksum"], \
    "served labels differ between interpreter and plan"
print("plan identity ok (serve): labels checksum %d on both paths"
      % a["results"]["labels_checksum"])
EOF
  echo "plan identity ok ($tag)"
}

# Plan-descriptor cache: against a fresh cache directory the first run
# must record compile-time cache misses, and a rerun over the same warm
# directory must record hits.
plan_cache_check() {
  local cli="$1" tag="$2"
  local dir manifest=/tmp/nvmrobust_check_plancache.json
  dir="$(mktemp -d /tmp/nvmrobust_plan_cache.XXXXXX)"
  rm -f "$manifest"
  NVMROBUST_CACHE_DIR="$dir" "$cli" serve --requests 40 --rate 1500 \
    --queue 1024 --metrics-out "$manifest" >/dev/null
  python3 - "$manifest" cold <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["metrics"].get("plan/cache_misses", 0) >= 1, \
    "cold plan cache must miss: %r" % m["metrics"].get("plan/cache_misses")
print("plan cache cold ok: %d miss(es)" % m["metrics"]["plan/cache_misses"])
EOF
  rm -f "$manifest"
  NVMROBUST_CACHE_DIR="$dir" "$cli" serve --requests 40 --rate 1500 \
    --queue 1024 --metrics-out "$manifest" >/dev/null
  python3 - "$manifest" warm <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["metrics"].get("plan/cache_hits", 0) >= 1, \
    "warm plan cache must hit: %r" % m["metrics"].get("plan/cache_hits")
print("plan cache warm ok: %d hit(s)" % m["metrics"]["plan/cache_hits"])
EOF
  rm -rf "$dir"
  echo "plan cache ok ($tag)"
}

if command -v python3 >/dev/null 2>&1; then
  echo "== tier-1: execution-plan identity (NVM_PLAN=0 vs 1) =="
  plan_identity_check ./build/examples/nvmrobust_cli release
  echo "== tier-1: plan-descriptor cache cold/warm =="
  plan_cache_check ./build/examples/nvmrobust_cli release
else
  echo "== tier-1: plan legs skipped (needs python3) =="
fi

# Numeric-parsing regression: a fully non-numeric value handed to a double
# flag must produce a warning and a fallback, never an uncaught std::stod
# exception (which aborts the process). "abc" is deliberate — strings like
# "0.1x" never threw (stod half-parses them), so only a fully non-numeric
# value reproduces the original crash.
echo "== tier-1: CLI malformed-double handling =="
STDERR_LOG=/tmp/nvmrobust_check_badflag.log
if ! ./build/examples/nvmrobust_cli serve --requests 40 --rate abc \
    --queue 1024 >/dev/null 2>"$STDERR_LOG"; then
  echo "FAIL: malformed --rate crashed the CLI" >&2
  cat "$STDERR_LOG" >&2
  exit 1
fi
grep -q "is not a valid number" "$STDERR_LOG" || {
  echo "FAIL: malformed --rate produced no warning" >&2
  exit 1
}
echo "malformed-double handling ok: warning + fallback, exit 0"

if [[ "${1:-}" == "--skip-sanitize" ]]; then
  echo "== sanitizer pass skipped =="
  exit 0
fi

echo "== sanitizer: ASan+UBSan build + ctest =="
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== sanitizer: serving smoke under ASan+UBSan =="
serve_smoke ./build-asan/examples/nvmrobust_cli /tmp/nvmrobust_check_serve_asan.json

echo "== sanitizer: cluster drain race under ASan+UBSan =="
cluster_drain_smoke ./build-asan/examples/nvmrobust_cli /tmp/nvmrobust_check_cluster_asan.json

if command -v python3 >/dev/null 2>&1; then
  echo "== sanitizer: plan identity + descriptor cache under ASan+UBSan =="
  plan_identity_check ./build-asan/examples/nvmrobust_cli asan
  plan_cache_check ./build-asan/examples/nvmrobust_cli asan
fi

if command -v python3 >/dev/null 2>&1; then
  echo "== sanitizer: fleet lifetime smoke under ASan+UBSan =="
  fleet_smoke_always ./build-asan/examples/nvmrobust_cli /tmp/nvmrobust_check_fleet_asan.json
fi

# Trace-event export under ASan: exercises the per-thread ring buffers and
# the atexit flush (the lifetime-bug hotspot), then validates the emitted
# chrome://tracing JSON structurally.
if command -v python3 >/dev/null 2>&1; then
  echo "== sanitizer: trace-event export under ASan+UBSan =="
  TRACE_OUT=/tmp/nvmrobust_check_trace_asan.json
  rm -f "$TRACE_OUT"
  NVM_TRACE_EVENTS="$TRACE_OUT" \
    ./build-asan/examples/nvmrobust_cli quickstart >/dev/null
  python3 scripts/perf_gate.py --validate-trace "$TRACE_OUT"
fi

echo "== all checks passed =="

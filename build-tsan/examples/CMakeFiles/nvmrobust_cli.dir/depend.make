# Empty dependencies file for nvmrobust_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nvmrobust_cli.dir/nvmrobust_cli.cpp.o"
  "CMakeFiles/nvmrobust_cli.dir/nvmrobust_cli.cpp.o.d"
  "nvmrobust_cli"
  "nvmrobust_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmrobust_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

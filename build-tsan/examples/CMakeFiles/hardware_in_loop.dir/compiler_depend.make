# Empty compiler generated dependencies file for hardware_in_loop.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hardware_in_loop.dir/hardware_in_loop.cpp.o"
  "CMakeFiles/hardware_in_loop.dir/hardware_in_loop.cpp.o.d"
  "hardware_in_loop"
  "hardware_in_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_in_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/attack_sweep.dir/attack_sweep.cpp.o"
  "CMakeFiles/attack_sweep.dir/attack_sweep.cpp.o.d"
  "attack_sweep"
  "attack_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xbar/circuit_solver.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/circuit_solver.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/circuit_solver.cpp.o.d"
  "/root/repo/src/xbar/config.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/config.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/config.cpp.o.d"
  "/root/repo/src/xbar/device.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/device.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/device.cpp.o.d"
  "/root/repo/src/xbar/fast_noise.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/fast_noise.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/fast_noise.cpp.o.d"
  "/root/repo/src/xbar/geniex.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/geniex.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/geniex.cpp.o.d"
  "/root/repo/src/xbar/mlp.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/mlp.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/mlp.cpp.o.d"
  "/root/repo/src/xbar/model_zoo.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/model_zoo.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/model_zoo.cpp.o.d"
  "/root/repo/src/xbar/mvm_model.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/mvm_model.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/mvm_model.cpp.o.d"
  "/root/repo/src/xbar/nf.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/nf.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/nf.cpp.o.d"
  "/root/repo/src/xbar/variation.cpp" "src/xbar/CMakeFiles/nvm_xbar.dir/variation.cpp.o" "gcc" "src/xbar/CMakeFiles/nvm_xbar.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tensor/CMakeFiles/nvm_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

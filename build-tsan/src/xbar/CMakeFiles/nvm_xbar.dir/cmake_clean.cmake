file(REMOVE_RECURSE
  "CMakeFiles/nvm_xbar.dir/circuit_solver.cpp.o"
  "CMakeFiles/nvm_xbar.dir/circuit_solver.cpp.o.d"
  "CMakeFiles/nvm_xbar.dir/config.cpp.o"
  "CMakeFiles/nvm_xbar.dir/config.cpp.o.d"
  "CMakeFiles/nvm_xbar.dir/device.cpp.o"
  "CMakeFiles/nvm_xbar.dir/device.cpp.o.d"
  "CMakeFiles/nvm_xbar.dir/fast_noise.cpp.o"
  "CMakeFiles/nvm_xbar.dir/fast_noise.cpp.o.d"
  "CMakeFiles/nvm_xbar.dir/geniex.cpp.o"
  "CMakeFiles/nvm_xbar.dir/geniex.cpp.o.d"
  "CMakeFiles/nvm_xbar.dir/mlp.cpp.o"
  "CMakeFiles/nvm_xbar.dir/mlp.cpp.o.d"
  "CMakeFiles/nvm_xbar.dir/model_zoo.cpp.o"
  "CMakeFiles/nvm_xbar.dir/model_zoo.cpp.o.d"
  "CMakeFiles/nvm_xbar.dir/mvm_model.cpp.o"
  "CMakeFiles/nvm_xbar.dir/mvm_model.cpp.o.d"
  "CMakeFiles/nvm_xbar.dir/nf.cpp.o"
  "CMakeFiles/nvm_xbar.dir/nf.cpp.o.d"
  "CMakeFiles/nvm_xbar.dir/variation.cpp.o"
  "CMakeFiles/nvm_xbar.dir/variation.cpp.o.d"
  "libnvm_xbar.a"
  "libnvm_xbar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_xbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

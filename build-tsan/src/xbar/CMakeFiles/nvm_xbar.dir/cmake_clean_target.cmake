file(REMOVE_RECURSE
  "libnvm_xbar.a"
)

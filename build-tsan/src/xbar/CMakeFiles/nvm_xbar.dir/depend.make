# Empty dependencies file for nvm_xbar.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libnvm_data.a"
)

# Empty dependencies file for nvm_data.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/cifar_loader.cpp" "src/data/CMakeFiles/nvm_data.dir/cifar_loader.cpp.o" "gcc" "src/data/CMakeFiles/nvm_data.dir/cifar_loader.cpp.o.d"
  "/root/repo/src/data/synth_vision.cpp" "src/data/CMakeFiles/nvm_data.dir/synth_vision.cpp.o" "gcc" "src/data/CMakeFiles/nvm_data.dir/synth_vision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tensor/CMakeFiles/nvm_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

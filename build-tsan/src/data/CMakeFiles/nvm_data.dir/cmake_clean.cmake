file(REMOVE_RECURSE
  "CMakeFiles/nvm_data.dir/cifar_loader.cpp.o"
  "CMakeFiles/nvm_data.dir/cifar_loader.cpp.o.d"
  "CMakeFiles/nvm_data.dir/synth_vision.cpp.o"
  "CMakeFiles/nvm_data.dir/synth_vision.cpp.o.d"
  "libnvm_data.a"
  "libnvm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/nvm_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/nvm_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/nvm_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/nvm_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/nvm_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/nvm_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/mvm_engine.cpp" "src/nn/CMakeFiles/nvm_nn.dir/mvm_engine.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/mvm_engine.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/nvm_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/nvm_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/nvm_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/resnet.cpp" "src/nn/CMakeFiles/nvm_nn.dir/resnet.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/resnet.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/nvm_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/nvm_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/nvm_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tensor/CMakeFiles/nvm_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libnvm_nn.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/nvm_nn.dir/activations.cpp.o"
  "CMakeFiles/nvm_nn.dir/activations.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/nvm_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/conv.cpp.o"
  "CMakeFiles/nvm_nn.dir/conv.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/layer.cpp.o"
  "CMakeFiles/nvm_nn.dir/layer.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/linear.cpp.o"
  "CMakeFiles/nvm_nn.dir/linear.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/loss.cpp.o"
  "CMakeFiles/nvm_nn.dir/loss.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/mvm_engine.cpp.o"
  "CMakeFiles/nvm_nn.dir/mvm_engine.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/network.cpp.o"
  "CMakeFiles/nvm_nn.dir/network.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/optimizer.cpp.o"
  "CMakeFiles/nvm_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/pool.cpp.o"
  "CMakeFiles/nvm_nn.dir/pool.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/resnet.cpp.o"
  "CMakeFiles/nvm_nn.dir/resnet.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/sequential.cpp.o"
  "CMakeFiles/nvm_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/nvm_nn.dir/trainer.cpp.o"
  "CMakeFiles/nvm_nn.dir/trainer.cpp.o.d"
  "libnvm_nn.a"
  "libnvm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

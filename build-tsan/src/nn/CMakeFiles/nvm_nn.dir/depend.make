# Empty dependencies file for nvm_nn.
# This may be replaced when dependencies are built.

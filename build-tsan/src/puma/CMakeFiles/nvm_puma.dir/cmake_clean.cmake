file(REMOVE_RECURSE
  "CMakeFiles/nvm_puma.dir/bit_slicing.cpp.o"
  "CMakeFiles/nvm_puma.dir/bit_slicing.cpp.o.d"
  "CMakeFiles/nvm_puma.dir/cost_model.cpp.o"
  "CMakeFiles/nvm_puma.dir/cost_model.cpp.o.d"
  "CMakeFiles/nvm_puma.dir/engine.cpp.o"
  "CMakeFiles/nvm_puma.dir/engine.cpp.o.d"
  "CMakeFiles/nvm_puma.dir/hw_network.cpp.o"
  "CMakeFiles/nvm_puma.dir/hw_network.cpp.o.d"
  "CMakeFiles/nvm_puma.dir/quantize.cpp.o"
  "CMakeFiles/nvm_puma.dir/quantize.cpp.o.d"
  "CMakeFiles/nvm_puma.dir/tiled_mvm.cpp.o"
  "CMakeFiles/nvm_puma.dir/tiled_mvm.cpp.o.d"
  "libnvm_puma.a"
  "libnvm_puma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_puma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for nvm_puma.
# This may be replaced when dependencies are built.

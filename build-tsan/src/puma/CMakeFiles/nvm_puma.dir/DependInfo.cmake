
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/puma/bit_slicing.cpp" "src/puma/CMakeFiles/nvm_puma.dir/bit_slicing.cpp.o" "gcc" "src/puma/CMakeFiles/nvm_puma.dir/bit_slicing.cpp.o.d"
  "/root/repo/src/puma/cost_model.cpp" "src/puma/CMakeFiles/nvm_puma.dir/cost_model.cpp.o" "gcc" "src/puma/CMakeFiles/nvm_puma.dir/cost_model.cpp.o.d"
  "/root/repo/src/puma/engine.cpp" "src/puma/CMakeFiles/nvm_puma.dir/engine.cpp.o" "gcc" "src/puma/CMakeFiles/nvm_puma.dir/engine.cpp.o.d"
  "/root/repo/src/puma/hw_network.cpp" "src/puma/CMakeFiles/nvm_puma.dir/hw_network.cpp.o" "gcc" "src/puma/CMakeFiles/nvm_puma.dir/hw_network.cpp.o.d"
  "/root/repo/src/puma/quantize.cpp" "src/puma/CMakeFiles/nvm_puma.dir/quantize.cpp.o" "gcc" "src/puma/CMakeFiles/nvm_puma.dir/quantize.cpp.o.d"
  "/root/repo/src/puma/tiled_mvm.cpp" "src/puma/CMakeFiles/nvm_puma.dir/tiled_mvm.cpp.o" "gcc" "src/puma/CMakeFiles/nvm_puma.dir/tiled_mvm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/nn/CMakeFiles/nvm_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xbar/CMakeFiles/nvm_xbar.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/nvm_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libnvm_puma.a"
)

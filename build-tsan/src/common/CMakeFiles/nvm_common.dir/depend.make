# Empty dependencies file for nvm_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libnvm_common.a"
)

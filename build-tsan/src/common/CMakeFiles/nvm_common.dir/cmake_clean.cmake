file(REMOVE_RECURSE
  "CMakeFiles/nvm_common.dir/env.cpp.o"
  "CMakeFiles/nvm_common.dir/env.cpp.o.d"
  "CMakeFiles/nvm_common.dir/file_cache.cpp.o"
  "CMakeFiles/nvm_common.dir/file_cache.cpp.o.d"
  "CMakeFiles/nvm_common.dir/logging.cpp.o"
  "CMakeFiles/nvm_common.dir/logging.cpp.o.d"
  "CMakeFiles/nvm_common.dir/rng.cpp.o"
  "CMakeFiles/nvm_common.dir/rng.cpp.o.d"
  "CMakeFiles/nvm_common.dir/serialize.cpp.o"
  "CMakeFiles/nvm_common.dir/serialize.cpp.o.d"
  "CMakeFiles/nvm_common.dir/thread_pool.cpp.o"
  "CMakeFiles/nvm_common.dir/thread_pool.cpp.o.d"
  "libnvm_common.a"
  "libnvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/env.cpp" "src/common/CMakeFiles/nvm_common.dir/env.cpp.o" "gcc" "src/common/CMakeFiles/nvm_common.dir/env.cpp.o.d"
  "/root/repo/src/common/file_cache.cpp" "src/common/CMakeFiles/nvm_common.dir/file_cache.cpp.o" "gcc" "src/common/CMakeFiles/nvm_common.dir/file_cache.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/nvm_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/nvm_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/common/CMakeFiles/nvm_common.dir/rng.cpp.o" "gcc" "src/common/CMakeFiles/nvm_common.dir/rng.cpp.o.d"
  "/root/repo/src/common/serialize.cpp" "src/common/CMakeFiles/nvm_common.dir/serialize.cpp.o" "gcc" "src/common/CMakeFiles/nvm_common.dir/serialize.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/nvm_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/nvm_common.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

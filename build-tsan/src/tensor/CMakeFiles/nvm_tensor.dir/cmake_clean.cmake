file(REMOVE_RECURSE
  "CMakeFiles/nvm_tensor.dir/ops.cpp.o"
  "CMakeFiles/nvm_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/nvm_tensor.dir/tensor.cpp.o"
  "CMakeFiles/nvm_tensor.dir/tensor.cpp.o.d"
  "libnvm_tensor.a"
  "libnvm_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for nvm_tensor.
# This may be replaced when dependencies are built.

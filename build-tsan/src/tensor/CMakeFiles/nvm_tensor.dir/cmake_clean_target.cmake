file(REMOVE_RECURSE
  "libnvm_tensor.a"
)

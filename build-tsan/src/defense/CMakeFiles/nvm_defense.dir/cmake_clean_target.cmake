file(REMOVE_RECURSE
  "libnvm_defense.a"
)

# Empty dependencies file for nvm_defense.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nvm_defense.dir/defenses.cpp.o"
  "CMakeFiles/nvm_defense.dir/defenses.cpp.o.d"
  "libnvm_defense.a"
  "libnvm_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnvm_core.a"
)

# Empty dependencies file for nvm_core.
# This may be replaced when dependencies are built.

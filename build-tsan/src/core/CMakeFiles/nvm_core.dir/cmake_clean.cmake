file(REMOVE_RECURSE
  "CMakeFiles/nvm_core.dir/evaluator.cpp.o"
  "CMakeFiles/nvm_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/nvm_core.dir/report.cpp.o"
  "CMakeFiles/nvm_core.dir/report.cpp.o.d"
  "CMakeFiles/nvm_core.dir/tasks.cpp.o"
  "CMakeFiles/nvm_core.dir/tasks.cpp.o.d"
  "libnvm_core.a"
  "libnvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

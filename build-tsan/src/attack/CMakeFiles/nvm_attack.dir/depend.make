# Empty dependencies file for nvm_attack.
# This may be replaced when dependencies are built.

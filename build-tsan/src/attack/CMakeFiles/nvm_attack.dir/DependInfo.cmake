
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attack_model.cpp" "src/attack/CMakeFiles/nvm_attack.dir/attack_model.cpp.o" "gcc" "src/attack/CMakeFiles/nvm_attack.dir/attack_model.cpp.o.d"
  "/root/repo/src/attack/ensemble_bb.cpp" "src/attack/CMakeFiles/nvm_attack.dir/ensemble_bb.cpp.o" "gcc" "src/attack/CMakeFiles/nvm_attack.dir/ensemble_bb.cpp.o.d"
  "/root/repo/src/attack/noise.cpp" "src/attack/CMakeFiles/nvm_attack.dir/noise.cpp.o" "gcc" "src/attack/CMakeFiles/nvm_attack.dir/noise.cpp.o.d"
  "/root/repo/src/attack/pgd.cpp" "src/attack/CMakeFiles/nvm_attack.dir/pgd.cpp.o" "gcc" "src/attack/CMakeFiles/nvm_attack.dir/pgd.cpp.o.d"
  "/root/repo/src/attack/square.cpp" "src/attack/CMakeFiles/nvm_attack.dir/square.cpp.o" "gcc" "src/attack/CMakeFiles/nvm_attack.dir/square.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/nn/CMakeFiles/nvm_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/nvm_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/nvm_attack.dir/attack_model.cpp.o"
  "CMakeFiles/nvm_attack.dir/attack_model.cpp.o.d"
  "CMakeFiles/nvm_attack.dir/ensemble_bb.cpp.o"
  "CMakeFiles/nvm_attack.dir/ensemble_bb.cpp.o.d"
  "CMakeFiles/nvm_attack.dir/noise.cpp.o"
  "CMakeFiles/nvm_attack.dir/noise.cpp.o.d"
  "CMakeFiles/nvm_attack.dir/pgd.cpp.o"
  "CMakeFiles/nvm_attack.dir/pgd.cpp.o.d"
  "CMakeFiles/nvm_attack.dir/square.cpp.o"
  "CMakeFiles/nvm_attack.dir/square.cpp.o.d"
  "libnvm_attack.a"
  "libnvm_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

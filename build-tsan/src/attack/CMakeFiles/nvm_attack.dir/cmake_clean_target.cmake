file(REMOVE_RECURSE
  "libnvm_attack.a"
)

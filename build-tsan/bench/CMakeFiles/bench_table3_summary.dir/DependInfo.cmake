
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_summary.cpp" "bench/CMakeFiles/bench_table3_summary.dir/bench_table3_summary.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_summary.dir/bench_table3_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/nvm_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/xbar/CMakeFiles/nvm_xbar.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/nvm_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/attack/CMakeFiles/nvm_attack.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/defense/CMakeFiles/nvm_defense.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/puma/CMakeFiles/nvm_puma.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/nvm_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/nvm_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_table3_summary.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_summary.dir/bench_table3_summary.cpp.o"
  "CMakeFiles/bench_table3_summary.dir/bench_table3_summary.cpp.o.d"
  "bench_table3_summary"
  "bench_table3_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig5_gain_vs_nf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_gain_vs_nf.dir/bench_fig5_gain_vs_nf.cpp.o"
  "CMakeFiles/bench_fig5_gain_vs_nf.dir/bench_fig5_gain_vs_nf.cpp.o.d"
  "bench_fig5_gain_vs_nf"
  "bench_fig5_gain_vs_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_gain_vs_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

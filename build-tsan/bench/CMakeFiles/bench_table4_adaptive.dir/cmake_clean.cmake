file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_adaptive.dir/bench_table4_adaptive.cpp.o"
  "CMakeFiles/bench_table4_adaptive.dir/bench_table4_adaptive.cpp.o.d"
  "bench_table4_adaptive"
  "bench_table4_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_whitebox.dir/bench_fig4_whitebox.cpp.o"
  "CMakeFiles/bench_fig4_whitebox.dir/bench_fig4_whitebox.cpp.o.d"
  "bench_fig4_whitebox"
  "bench_fig4_whitebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_whitebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_square.dir/bench_fig3_square.cpp.o"
  "CMakeFiles/bench_fig3_square.dir/bench_fig3_square.cpp.o.d"
  "bench_fig3_square"
  "bench_fig3_square.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_square.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig3_square.
# This may be replaced when dependencies are built.

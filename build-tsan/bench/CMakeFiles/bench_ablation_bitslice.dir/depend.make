# Empty dependencies file for bench_ablation_bitslice.
# This may be replaced when dependencies are built.

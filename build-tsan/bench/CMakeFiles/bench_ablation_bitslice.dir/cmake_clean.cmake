file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bitslice.dir/bench_ablation_bitslice.cpp.o"
  "CMakeFiles/bench_ablation_bitslice.dir/bench_ablation_bitslice.cpp.o.d"
  "bench_ablation_bitslice"
  "bench_ablation_bitslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bitslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

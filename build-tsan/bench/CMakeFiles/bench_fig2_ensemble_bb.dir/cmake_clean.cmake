file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ensemble_bb.dir/bench_fig2_ensemble_bb.cpp.o"
  "CMakeFiles/bench_fig2_ensemble_bb.dir/bench_fig2_ensemble_bb.cpp.o.d"
  "bench_fig2_ensemble_bb"
  "bench_fig2_ensemble_bb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ensemble_bb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

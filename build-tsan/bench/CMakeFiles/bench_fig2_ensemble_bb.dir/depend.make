# Empty dependencies file for bench_fig2_ensemble_bb.
# This may be replaced when dependencies are built.

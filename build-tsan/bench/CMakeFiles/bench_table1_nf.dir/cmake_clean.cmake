file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_nf.dir/bench_table1_nf.cpp.o"
  "CMakeFiles/bench_table1_nf.dir/bench_table1_nf.cpp.o.d"
  "bench_table1_nf"
  "bench_table1_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table1_nf.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig6_adaptive_bb.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ext_chip_variation.
# This may be replaced when dependencies are built.

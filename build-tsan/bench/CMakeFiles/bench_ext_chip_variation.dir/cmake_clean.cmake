file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_chip_variation.dir/bench_ext_chip_variation.cpp.o"
  "CMakeFiles/bench_ext_chip_variation.dir/bench_ext_chip_variation.cpp.o.d"
  "bench_ext_chip_variation"
  "bench_ext_chip_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_chip_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

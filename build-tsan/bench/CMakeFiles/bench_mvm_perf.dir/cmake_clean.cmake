file(REMOVE_RECURSE
  "CMakeFiles/bench_mvm_perf.dir/bench_mvm_perf.cpp.o"
  "CMakeFiles/bench_mvm_perf.dir/bench_mvm_perf.cpp.o.d"
  "bench_mvm_perf"
  "bench_mvm_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mvm_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

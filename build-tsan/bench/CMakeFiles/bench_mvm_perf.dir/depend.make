# Empty dependencies file for bench_mvm_perf.
# This may be replaced when dependencies are built.

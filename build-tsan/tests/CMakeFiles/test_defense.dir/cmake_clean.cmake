file(REMOVE_RECURSE
  "CMakeFiles/test_defense.dir/test_defense.cpp.o"
  "CMakeFiles/test_defense.dir/test_defense.cpp.o.d"
  "test_defense"
  "test_defense.pdb"
  "test_defense[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_defense.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_puma.dir/test_puma.cpp.o"
  "CMakeFiles/test_puma.dir/test_puma.cpp.o.d"
  "test_puma"
  "test_puma.pdb"
  "test_puma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_puma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_puma.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_xbar_solver.dir/test_xbar_solver.cpp.o"
  "CMakeFiles/test_xbar_solver.dir/test_xbar_solver.cpp.o.d"
  "test_xbar_solver"
  "test_xbar_solver.pdb"
  "test_xbar_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbar_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_xbar_solver.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_xbar_device.dir/test_xbar_device.cpp.o"
  "CMakeFiles/test_xbar_device.dir/test_xbar_device.cpp.o.d"
  "test_xbar_device"
  "test_xbar_device.pdb"
  "test_xbar_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbar_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_xbar_device.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_data_core.dir/test_data_core.cpp.o"
  "CMakeFiles/test_data_core.dir/test_data_core.cpp.o.d"
  "test_data_core"
  "test_data_core.pdb"
  "test_data_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

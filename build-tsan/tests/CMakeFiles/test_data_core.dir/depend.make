# Empty dependencies file for test_data_core.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_cifar_loader.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_cifar_loader.dir/test_cifar_loader.cpp.o"
  "CMakeFiles/test_cifar_loader.dir/test_cifar_loader.cpp.o.d"
  "test_cifar_loader"
  "test_cifar_loader.pdb"
  "test_cifar_loader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cifar_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

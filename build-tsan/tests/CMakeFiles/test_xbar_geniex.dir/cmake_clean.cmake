file(REMOVE_RECURSE
  "CMakeFiles/test_xbar_geniex.dir/test_xbar_geniex.cpp.o"
  "CMakeFiles/test_xbar_geniex.dir/test_xbar_geniex.cpp.o.d"
  "test_xbar_geniex"
  "test_xbar_geniex.pdb"
  "test_xbar_geniex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xbar_geniex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_xbar_geniex.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_hw_semantics.dir/test_hw_semantics.cpp.o"
  "CMakeFiles/test_hw_semantics.dir/test_hw_semantics.cpp.o.d"
  "test_hw_semantics"
  "test_hw_semantics.pdb"
  "test_hw_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

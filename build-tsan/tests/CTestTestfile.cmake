# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_tensor[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ops[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_nn_training[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_xbar_device[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_xbar_solver[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_xbar_geniex[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_puma[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_attack[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_defense[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_data_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_extensions[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_hw_semantics[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cifar_loader[1]_include.cmake")

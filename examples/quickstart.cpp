// Quickstart: the full pipeline on one task in a few dozen lines.
//
//   1. generate the SCIFAR10 synthetic dataset and train (or cache-load)
//      its ResNet-20 target network;
//   2. deploy the network onto a non-ideal 64x64_100k NVM crossbar model;
//   3. compare clean accuracy: ideal digital vs crossbar;
//   4. craft a non-adaptive white-box PGD attack (gradients from the
//      *digital* network) and show the crossbar's intrinsic robustness.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "attack/pgd.h"
#include "core/evaluator.h"
#include "core/tasks.h"
#include "puma/hw_network.h"
#include "xbar/model_zoo.h"

int main() {
  using namespace nvm;

  // 1. Data + trained target model (cached under ./repro_cache).
  core::PreparedTask prepared = core::prepare(core::task_scifar10());
  std::printf("task %s (%s): clean accuracy %.2f%% on ideal hardware\n",
              prepared.task.name.c_str(), prepared.network.arch().c_str(),
              prepared.clean_test_accuracy);

  const std::int64_t n_eval = 64;
  auto images = prepared.eval_images(n_eval);
  auto labels = prepared.eval_labels(n_eval);

  // 2. Craft white-box PGD adversarial images against the digital network
  //    (the attacker does not know about the analog hardware).
  attack::NetworkAttackModel attacker(prepared.network);
  attack::PgdOptions pgd;
  // Paper epsilon 2/255, scaled for the smaller images (see EXPERIMENTS.md).
  pgd.epsilon = prepared.task.scaled_eps(2.0f);
  pgd.iters = 30;
  std::vector<Tensor> adv = core::craft_pgd(attacker, images, labels, pgd);

  const float clean_digital =
      core::accuracy(core::plain_forward(prepared.network), images, labels);
  const float adv_digital = core::accuracy(
      core::plain_forward(prepared.network), adv, labels);

  // 3. Deploy onto the most non-ideal Table I crossbar (GENIEx surrogate
  //    trained against the in-repo circuit solver; cached after first run).
  //    The deployment restores the network when it goes out of scope.
  auto model = xbar::make_geniex("64x64_100k");
  auto calib = prepared.calibration_images();
  float clean_hw = 0.0f, adv_hw = 0.0f;
  {
    puma::HwDeployment deployment(prepared.network, model, calib);
    clean_hw =
        core::accuracy(core::plain_forward(prepared.network), images, labels);
    adv_hw = core::accuracy(core::plain_forward(prepared.network), adv, labels);
  }

  // 4. Report the push-pull effect: non-idealities cost clean accuracy but
  //    blunt the transferred attack.
  std::printf("\n%-34s %10s %14s\n", "", "digital", "64x64_100k");
  std::printf("%-34s %9.2f%% %13.2f%%\n", "clean accuracy", clean_digital,
              clean_hw);
  std::printf("%-34s %9.2f%% %13.2f%%\n",
              "white-box PGD (eps=6/255, iter=30)", adv_digital, adv_hw);
  std::printf("\nintrinsic robustness gain under attack: %+.2f%%\n",
              adv_hw - adv_digital);
  return 0;
}

// Example: comparing attack families against a crossbar deployment.
//
// Sweeps the l_inf budget for FGSM (single step), PGD (iterated), and the
// gradient-free Square Attack against the same trained SCIFAR10 model,
// evaluated both on accurate digital hardware and deployed on the
// 32x32_100k NVM crossbar. Shows the paper's core observation from the
// attacker's side: iterated gradient attacks gain the most from accurate
// gradients — and lose the most when the defender's arithmetic is analog.
#include <cstdio>

#include "attack/pgd.h"
#include "attack/square.h"
#include "core/evaluator.h"
#include "core/tasks.h"
#include "puma/hw_network.h"
#include "xbar/model_zoo.h"

int main() {
  using namespace nvm;
  core::PreparedTask prepared = core::prepare(core::task_scifar10());
  const std::int64_t n = 48;
  auto images = prepared.eval_images(n);
  auto labels = prepared.eval_labels(n);
  auto calib = prepared.calibration_images();
  auto model = xbar::make_geniex("32x32_100k");

  attack::NetworkAttackModel attacker(prepared.network);
  std::printf("%-10s %-8s %10s %14s\n", "attack", "eps/255", "digital",
              "32x32_100k");
  for (float eps255 : {4.0f, 8.0f, 12.0f}) {
    const float eps = eps255 / 255.0f;
    struct Crafted {
      const char* name;
      std::vector<Tensor> adv;
    };
    std::vector<Crafted> crafted;

    crafted.push_back({"FGSM", {}});
    for (std::size_t i = 0; i < images.size(); ++i)
      crafted.back().adv.push_back(
          attack::fgsm_attack(attacker, images[i], labels[i], eps));

    attack::PgdOptions pgd;
    pgd.epsilon = eps;
    pgd.iters = 30;
    crafted.push_back(
        {"PGD-30", core::craft_pgd(attacker, images, labels, pgd)});

    attack::MiFgsmOptions mi;
    mi.epsilon = eps;
    mi.iters = 10;
    crafted.push_back({"MI-FGSM", {}});
    for (std::size_t i = 0; i < images.size(); ++i)
      crafted.back().adv.push_back(
          attack::mi_fgsm_attack(attacker, images[i], labels[i], mi));

    attack::SquareOptions sq;
    sq.epsilon = eps;
    sq.max_queries = 150;
    crafted.push_back(
        {"Square", core::craft_square(attacker, images, labels, sq)});

    for (const Crafted& c : crafted) {
      std::span<const Tensor> adv(c.adv.data(), c.adv.size());
      const float digital =
          core::accuracy(core::plain_forward(prepared.network), adv, labels);
      float hw = 0.0f;
      {
        puma::HwDeployment dep(prepared.network, model, calib);
        hw = core::accuracy(core::plain_forward(prepared.network), adv, labels);
      }
      std::printf("%-10s %-8.0f %9.2f%% %13.2f%%\n", c.name, eps255, digital,
                  hw);
    }
  }
  return 0;
}

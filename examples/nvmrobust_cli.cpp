// nvmrobust_cli — command-line front end for one-off experiments.
//
// Subcommands:
//   nf [--rows N] [--cols N] [--ron OHM] [--rwire OHM] [--samples K]
//       Fit a GENIEx surrogate for a custom crossbar design (cached) and
//       print its NF measured on surrogate and circuit solver.
//   tasks
//       List the built-in tasks with their dataset/network parameters.
//   eval --task NAME [--xbar MODEL] [--n K]
//       Clean accuracy of a task's (cached) network, digital or deployed.
//   attack --task NAME [--xbar MODEL] [--eps E/255] [--iters I] [--n K]
//       Non-adaptive white-box PGD: craft on digital, evaluate digital +
//       optional crossbar deployment.
//   fault_sweep --task NAME [--xbar MODEL] [--model geniex|fast_noise|solver]
//       [--rates R1,R2,...] [--drift T1,T2,...] [--dead_rows R] [--dead_cols R]
//       [--chip S] [--n K] [--eps E/255] [--iters I] [--attack pgd|square|both|none]
//       Clean + transferred-adversarial accuracy vs stuck-cell rate and
//       conductance-drift time, with failure-handling counters per row.
//   serve [--rate RPS] [--requests N] [--batch B] [--flush_us US] [--queue Q]
//       [--timeout_us US] [--model fast_noise|ideal]
//       Stand up the micro-batching inference service over a crossbar-
//       deployed linear classifier and drive it with deterministic
//       open-loop Poisson traffic; reports throughput and latency.
//   serve_cluster [--shards N] [--policy P] [--rate RPS] [--requests N]
//       [--drain_race 0|1]
//       Sharded multi-tenant serving cluster (DESIGN.md §16): routed
//       open-loop traffic with per-shard latency rows, or (--drain_race)
//       an accounting check racing submitters against graceful drain.
//   fleet_sim --task NAME [--chips N] [--epochs E] [--sample K] [--dt SEC]
//       [--policy never|always|threshold|budgeted] [--n K] [--attack pgd|none]
//       Time-stepped population-scale aging simulation: chip-seeded
//       fault/drift handles, per-epoch sampled accuracy, SLA monitoring,
//       and a recalibration scheduler (see DESIGN.md §14).
//
// All artifacts cache under ./repro_cache; everything is deterministic.
//
// Every subcommand accepts --metrics-out PATH (or the NVM_METRICS_OUT env
// var) to write a JSON run manifest with the crossbar config, results, and
// metric/health/span deltas of the run (see DESIGN.md §10).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/pgd.h"
#include "attack/square.h"
#include "common/env.h"
#include "common/trace.h"
#include "core/evaluator.h"
#include "core/fault_sweep.h"
#include "core/report.h"
#include "core/tasks.h"
#include "fleet/simulator.h"
#include "nn/loss.h"
#include "puma/hw_network.h"
#include "puma/tiled_mvm.h"
#include "serve/cluster.h"
#include "serve/serve.h"
#include "tensor/ops.h"
#include "xbar/fast_noise.h"
#include "xbar/geniex.h"
#include "xbar/model_zoo.h"
#include "xbar/nf.h"

namespace {

using namespace nvm;

/// Minimal --key value parser; flags must all take a value.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
      std::exit(2);
    }
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

double flag_or(const std::map<std::string, std::string>& flags,
               const std::string& key, double fallback) {
  auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  double v = 0.0;
  // Strict parse (strtod full-consume, ERANGE rejected): a typo like
  // "--eps 0.1x" warns and falls back instead of half-parsing or throwing
  // an uncaught std::invalid_argument out of main.
  if (!parse_double(it->second.c_str(), &v)) {
    std::fprintf(stderr,
                 "warning: --%s '%s' is not a valid number; using %g\n",
                 key.c_str(), it->second.c_str(), fallback);
    return fallback;
  }
  return v;
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

/// Manifest for this invocation: --metrics-out wins, NVM_METRICS_OUT next,
/// otherwise the manifest is inert.
core::RunManifest manifest_for(const std::string& cmd,
                               const std::map<std::string, std::string>& flags) {
  return core::RunManifest::from_env(
      "cli/" + cmd, flag_or(flags, "metrics-out", std::string()));
}

core::Task find_task(const std::string& name) {
  for (const core::Task& t : core::all_tasks())
    if (t.name == name) return t;
  std::fprintf(stderr, "unknown task '%s' (try: SCIFAR10, SCIFAR100, SIMAGENET)\n",
               name.c_str());
  std::exit(2);
}

int cmd_nf(const std::map<std::string, std::string>& flags) {
  core::RunManifest manifest = manifest_for("nf", flags);
  xbar::CrossbarConfig cfg = xbar::xbar_64x64_100k();
  cfg.rows = static_cast<std::int64_t>(flag_or(flags, "rows", 64));
  cfg.cols = static_cast<std::int64_t>(flag_or(flags, "cols", cfg.rows));
  cfg.r_on = flag_or(flags, "ron", cfg.r_on);
  cfg.r_wire = flag_or(flags, "rwire", cfg.r_wire);
  cfg.r_source = flag_or(flags, "rsource", cfg.r_source);
  cfg.r_sink = flag_or(flags, "rsink", cfg.r_sink);
  char name[64];
  std::snprintf(name, sizeof name, "cli_%lldx%lld_%.0fk",
                static_cast<long long>(cfg.rows),
                static_cast<long long>(cfg.cols), cfg.r_on / 1000.0);
  cfg.name = name;

  xbar::GeniexTrainOptions train;
  train.solver_samples =
      static_cast<std::int64_t>(flag_or(flags, "samples", 240));
  auto model = xbar::GeniexModel::load_or_train(cfg, train);

  xbar::NfOptions nf_opt;
  nf_opt.samples = static_cast<std::int64_t>(flag_or(flags, "nf_samples", 24));
  const auto geniex_nf = xbar::measure_nf(model, nf_opt);
  xbar::CircuitSolverModel solver(cfg);
  const auto solver_nf = xbar::measure_nf(solver, nf_opt);
  std::printf("design %s: NF = %.4f +- %.4f (geniex), %.4f +- %.4f (solver)\n",
              cfg.name.c_str(), geniex_nf.nf, geniex_nf.nf_stddev,
              solver_nf.nf, solver_nf.nf_stddev);
  manifest.set_xbar(cfg);
  manifest.add_result("nf_geniex", geniex_nf.nf);
  manifest.add_result("nf_solver", solver_nf.nf);
  return 0;
}

int cmd_tasks() {
  std::printf("%-10s %-24s %7s %6s %7s %6s\n", "name", "paper analogue",
              "classes", "size", "train", "test");
  for (const core::Task& t : core::all_tasks())
    std::printf("%-10s %-24s %7lld %6lld %7lld %6lld\n", t.name.c_str(),
                t.paper_analogue.c_str(),
                static_cast<long long>(t.data_spec.classes),
                static_cast<long long>(t.data_spec.image_size),
                static_cast<long long>(t.data_spec.train_count),
                static_cast<long long>(t.data_spec.test_count));
  return 0;
}

int cmd_eval(const std::map<std::string, std::string>& flags) {
  core::RunManifest manifest = manifest_for("eval", flags);
  core::PreparedTask prepared =
      core::prepare(find_task(flag_or(flags, "task", "SCIFAR10")));
  const auto n = static_cast<std::int64_t>(flag_or(flags, "n", 96));
  auto images = prepared.eval_images(n);
  auto labels = prepared.eval_labels(n);
  manifest.set_note("task", prepared.task.name);
  const std::string xbar_name = flag_or(flags, "xbar", std::string());
  if (xbar_name.empty()) {
    const float acc =
        core::accuracy(core::plain_forward(prepared.network), images, labels);
    std::printf("%s digital accuracy: %.2f%% (n=%lld)\n",
                prepared.task.name.c_str(), acc,
                static_cast<long long>(images.size()));
    manifest.add_result("digital_accuracy", acc);
  } else {
    auto model = xbar::make_geniex(xbar_name);
    auto calib = prepared.calibration_images();
    puma::HwDeployment dep(prepared.network, model, calib);
    const float acc =
        core::accuracy(core::plain_forward(prepared.network), images, labels);
    std::printf("%s on %s: %.2f%% (n=%lld)\n", prepared.task.name.c_str(),
                xbar_name.c_str(), acc,
                static_cast<long long>(images.size()));
    manifest.set_xbar(model->config());
    manifest.add_result("hw_accuracy", acc);
  }
  return 0;
}

int cmd_attack(const std::map<std::string, std::string>& flags) {
  core::RunManifest manifest = manifest_for("attack", flags);
  core::PreparedTask prepared =
      core::prepare(find_task(flag_or(flags, "task", "SCIFAR10")));
  const auto n = static_cast<std::int64_t>(flag_or(flags, "n", 48));
  auto images = prepared.eval_images(n);
  auto labels = prepared.eval_labels(n);

  attack::PgdOptions opt;
  opt.epsilon = static_cast<float>(flag_or(flags, "eps", 6.0)) / 255.0f;
  opt.iters = static_cast<std::int64_t>(flag_or(flags, "iters", 30));
  attack::NetworkAttackModel attacker(prepared.network);
  std::vector<Tensor> adv = core::craft_pgd(attacker, images, labels, opt);

  std::printf("white-box PGD eps=%.1f/255 iters=%lld on %s (n=%lld)\n",
              opt.epsilon * 255.0f, static_cast<long long>(opt.iters),
              prepared.task.name.c_str(),
              static_cast<long long>(images.size()));
  const float clean =
      core::accuracy(core::plain_forward(prepared.network), images, labels);
  const float adv_acc =
      core::accuracy(core::plain_forward(prepared.network),
                     std::span<const Tensor>(adv.data(), adv.size()), labels);
  std::printf("  digital: clean %.2f%%, adversarial %.2f%%\n", clean, adv_acc);
  manifest.set_note("task", prepared.task.name);
  manifest.add_result("digital_clean_accuracy", clean);
  manifest.add_result("digital_adv_accuracy", adv_acc);
  manifest.add_result("pgd_eps_255", opt.epsilon * 255.0f);
  const std::string xbar_name = flag_or(flags, "xbar", std::string());
  if (!xbar_name.empty()) {
    auto model = xbar::make_geniex(xbar_name);
    auto calib = prepared.calibration_images();
    puma::HwDeployment dep(prepared.network, model, calib);
    const float hw_clean =
        core::accuracy(core::plain_forward(prepared.network), images, labels);
    const float hw_adv =
        core::accuracy(core::plain_forward(prepared.network),
                       std::span<const Tensor>(adv.data(), adv.size()), labels);
    std::printf("  %s: clean %.2f%%, adversarial %.2f%%\n", xbar_name.c_str(),
                hw_clean, hw_adv);
    manifest.set_xbar(model->config());
    manifest.add_result("hw_clean_accuracy", hw_clean);
    manifest.add_result("hw_adv_accuracy", hw_adv);
  }
  return 0;
}

/// "0,0.01,0.05" -> {0, 0.01, 0.05}. Malformed items are skipped with a
/// warning (empty items from trailing commas are silently ignored) so a
/// bad CSV degrades to the parseable subset instead of crashing the sweep.
std::vector<double> parse_list(const std::string& s) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    double v = 0.0;
    if (parse_double(item.c_str(), &v))
      out.push_back(v);
    else
      std::fprintf(stderr,
                   "warning: skipping non-numeric list item '%s'\n",
                   item.c_str());
  }
  return out;
}

int cmd_fault_sweep(const std::map<std::string, std::string>& flags) {
  core::RunManifest manifest = manifest_for("fault_sweep", flags);
  core::PreparedTask prepared =
      core::prepare(find_task(flag_or(flags, "task", "SCIFAR10")));
  const std::string xbar_name = flag_or(flags, "xbar", "64x64_100k");
  const std::string model_kind = flag_or(flags, "model", "geniex");

  std::shared_ptr<const xbar::MvmModel> base;
  if (model_kind == "geniex") {
    base = xbar::make_geniex(xbar_name);
  } else if (model_kind == "solver") {
    base = xbar::make_solver(xbar_name);
  } else if (model_kind == "fast_noise") {
    base = std::make_shared<xbar::FastNoiseModel>(
        xbar::make_solver(xbar_name)->config());
  } else {
    std::fprintf(stderr,
                 "unknown --model '%s' (try: geniex, fast_noise, solver)\n",
                 model_kind.c_str());
    return 2;
  }

  core::FaultSweepOptions opt;
  if (flags.count("rates")) opt.stuck_rates = parse_list(flags.at("rates"));
  if (flags.count("drift")) opt.drift_times = parse_list(flags.at("drift"));
  opt.stuck_on_fraction = flag_or(flags, "stuck_on_frac", 0.5);
  opt.dead_row_rate = flag_or(flags, "dead_rows", 0.0);
  opt.dead_col_rate = flag_or(flags, "dead_cols", 0.0);
  opt.chip_seed = static_cast<std::uint64_t>(flag_or(flags, "chip", 1));
  opt.n_eval = static_cast<std::int64_t>(flag_or(flags, "n", 32));
  opt.pgd_eps_255 = static_cast<float>(flag_or(flags, "eps", 2.0));
  opt.pgd_iters = static_cast<std::int64_t>(flag_or(flags, "iters", 20));
  opt.square_queries =
      static_cast<std::int64_t>(flag_or(flags, "queries", 300));
  const std::string attack_kind = flag_or(flags, "attack", "pgd");
  opt.run_pgd = attack_kind == "pgd" || attack_kind == "both";
  opt.run_square = attack_kind == "square" || attack_kind == "both";

  const auto result = core::run_fault_sweep(prepared, base, opt);
  core::print_fault_sweep(prepared.task, base->name() + "/" + xbar_name, opt,
                          result);
  manifest.set_xbar(base->config());
  manifest.set_note("task", prepared.task.name);
  manifest.set_note("model", base->name());
  manifest.add_result("sweep_rows", static_cast<double>(result.rows.size()));
  manifest.add_result("digital_clean_accuracy", result.digital_clean);
  if (!result.rows.empty()) {
    manifest.add_result("clean_accuracy_first", result.rows.front().clean);
    manifest.add_result("clean_accuracy_last", result.rows.back().clean);
  }
  return 0;
}

/// Flag wins, then the environment variable, then the fallback — the
/// NVM_FLEET_* variables let scripts pin a fleet config without flag soup.
double fleet_param(const std::map<std::string, std::string>& flags,
                   const std::string& flag, const char* env_name,
                   double fallback) {
  auto it = flags.find(flag);
  if (it != flags.end()) {
    double v = 0.0;
    if (parse_double(it->second.c_str(), &v)) return v;
    std::fprintf(stderr,
                 "warning: --%s '%s' is not a valid number; trying %s\n",
                 flag.c_str(), it->second.c_str(), env_name);
  }
  // env_double applies the same strict-parse contract (warn + fallback on
  // e.g. NVM_FLEET_BUDGET=abc) instead of stod throwing out of main.
  return env_double(env_name, fallback);
}

int cmd_fleet_sim(const std::map<std::string, std::string>& flags) {
  core::RunManifest manifest = manifest_for("fleet_sim", flags);
  core::PreparedTask prepared =
      core::prepare(find_task(flag_or(flags, "task", "SCIFAR10")));
  const std::string xbar_name = flag_or(flags, "xbar", "64x64_100k");
  const std::string model_kind = flag_or(flags, "model", "fast_noise");

  std::shared_ptr<const xbar::MvmModel> base;
  if (model_kind == "geniex") {
    base = xbar::make_geniex(xbar_name);
  } else if (model_kind == "solver") {
    base = xbar::make_solver(xbar_name);
  } else if (model_kind == "fast_noise") {
    base = std::make_shared<xbar::FastNoiseModel>(
        xbar::make_solver(xbar_name)->config());
  } else {
    std::fprintf(stderr,
                 "unknown --model '%s' (try: geniex, fast_noise, solver)\n",
                 model_kind.c_str());
    return 2;
  }

  fleet::FleetOptions opt;
  opt.n_chips = static_cast<std::int64_t>(
      fleet_param(flags, "chips", "NVM_FLEET_CHIPS", 48));
  opt.epochs = static_cast<std::int64_t>(
      fleet_param(flags, "epochs", "NVM_FLEET_EPOCHS", 5));
  opt.sample_per_epoch = static_cast<std::int64_t>(
      fleet_param(flags, "sample", "NVM_FLEET_SAMPLE", 6));
  opt.dt_s = fleet_param(flags, "dt", "NVM_FLEET_DT_S", 2.0);
  opt.initial_age_spread_s =
      fleet_param(flags, "age_spread", "NVM_FLEET_AGE_SPREAD_S", 0.0);
  opt.seed = static_cast<std::uint64_t>(
      fleet_param(flags, "seed", "NVM_FLEET_SEED", 7));
  opt.stuck_on_rate = flag_or(flags, "stuck_on", opt.stuck_on_rate);
  opt.stuck_off_rate = flag_or(flags, "stuck_off", opt.stuck_off_rate);
  opt.dead_row_rate = flag_or(flags, "dead_rows", opt.dead_row_rate);
  opt.dead_col_rate = flag_or(flags, "dead_cols", opt.dead_col_rate);
  opt.rate_log_sigma = flag_or(flags, "rate_sigma", opt.rate_log_sigma);
  opt.drift_nu_lo = flag_or(flags, "nu_lo", opt.drift_nu_lo);
  opt.drift_nu_hi = flag_or(flags, "nu_hi", opt.drift_nu_hi);
  opt.n_eval = static_cast<std::int64_t>(flag_or(flags, "n", 32));
  opt.pgd_eps_255 = static_cast<float>(flag_or(flags, "eps", 2.0));
  opt.pgd_iters = static_cast<int>(flag_or(flags, "iters", 10));
  opt.square_queries = static_cast<int>(flag_or(flags, "queries", 300));
  const std::string attack_kind = flag_or(flags, "attack", "none");
  opt.run_pgd = attack_kind == "pgd" || attack_kind == "both";
  opt.run_square = attack_kind == "square" || attack_kind == "both";

  fleet::SchedulerConfig sched;
  sched.policy = fleet::RecalibrationScheduler::parse_policy(
      flag_or(flags, "policy", env_str("NVM_FLEET_POLICY", "threshold")));
  sched.reprogram_decay_threshold =
      flag_or(flags, "reprogram_decay", sched.reprogram_decay_threshold);
  sched.refit_decay_threshold =
      flag_or(flags, "refit_decay", sched.refit_decay_threshold);
  sched.retire_defect_fraction =
      flag_or(flags, "retire_defect", sched.retire_defect_fraction);
  sched.budget_actions_per_epoch = static_cast<std::int64_t>(
      flag_or(flags, "budget", sched.budget_actions_per_epoch));

  fleet::SlaConfig sla;
  sla.min_clean_acc = flag_or(flags, "slo_clean", sla.min_clean_acc);
  sla.min_adv_acc = flag_or(flags, "slo_adv", sla.min_adv_acc);
  sla.min_availability = flag_or(flags, "slo_avail", sla.min_availability);
  sla.cohort_age_s = flag_or(flags, "cohort_age", sla.cohort_age_s);
  sla.min_cohort_samples = static_cast<std::int64_t>(
      flag_or(flags, "cohort_min", sla.min_cohort_samples));

  fleet::FleetSimulator sim(prepared, base, opt);
  const fleet::FleetResult result = sim.run(sched, sla);
  fleet::print_fleet_result(prepared.task, base->name() + "/" + xbar_name,
                            result);

  manifest.set_xbar(base->config());
  manifest.set_note("task", prepared.task.name);
  manifest.set_note("model", base->name());
  fleet::emit_fleet_manifest(result, manifest);
  return 0;
}

/// Attack view of a TiledMatrix linear classifier: logits are the deployed
/// (quantized, noisy) matmul; gradients use the ideal float weights.
class TiledAttackModel final : public attack::AttackModel {
 public:
  TiledAttackModel(const puma::TiledMatrix& tiled, const Tensor& w)
      : tiled_(tiled), wt_(transpose2d(w)) {}

  Tensor logits(const Tensor& x) override {
    Tensor flat = x.reshaped({x.numel(), 1});
    return tiled_.matmul(flat).reshaped({tiled_.rows()});
  }

  Tensor loss_input_grad(const Tensor& x, std::int64_t label,
                         float* loss_out) override {
    Tensor p = nn::softmax(logits(x));
    if (loss_out != nullptr)
      *loss_out = -std::log(std::max(p[label], 1e-12f));
    p[label] -= 1.0f;
    return matvec(wt_, p).reshaped(x.shape());
  }

 private:
  const puma::TiledMatrix& tiled_;
  Tensor wt_;  // (K, M)
};

/// Fast self-contained smoke run (< 1 s, no training, no cache): exercises
/// the circuit solver, a tiled fast-noise deployment of a tiny linear
/// classifier, and both attack families, so a --metrics-out manifest from
/// this command carries every layer's metrics.
int cmd_quickstart(const std::map<std::string, std::string>& flags) {
  core::RunManifest manifest = manifest_for("quickstart", flags);

  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  cfg.rows = cfg.cols = 16;
  cfg.name = "quickstart_16x16";
  manifest.set_xbar(cfg);

  // 1. Circuit solver: a handful of nodal solves on random programmings.
  const auto n_solves = static_cast<int>(flag_or(flags, "solves", 6));
  Rng rng(7);
  xbar::SolverOptions sopt;
  double sweeps_total = 0.0;
  for (int s = 0; s < n_solves; ++s) {
    Tensor g = xbar::sample_conductances(cfg, rng);
    Tensor v = xbar::sample_voltages(cfg, rng);
    int sweeps = 0;
    (void)xbar::solve_crossbar(cfg, sopt, g, v, &sweeps);
    sweeps_total += sweeps;
  }
  const double mean_sweeps = sweeps_total / n_solves;

  // 2. Tiny linear classifier (8 classes x 16 features) deployed on
  // fast-noise crossbar tiles; "labels" come from the ideal float weights.
  const std::int64_t classes = 8, feat = 16;
  const auto n_eval = static_cast<std::int64_t>(flag_or(flags, "n", 48));
  Rng wrng(11);
  Tensor w({classes, feat});
  for (auto& v : w.data())
    v = static_cast<float>(wrng.uniform(-1.0, 1.0));
  Tensor x({feat, n_eval});
  for (auto& v : x.data()) v = static_cast<float>(wrng.uniform());

  auto noise_model = std::make_shared<xbar::FastNoiseModel>(cfg);
  puma::TiledMatrix tiled(w, noise_model, puma::HwConfig{});
  Tensor ideal = matmul(w, x);
  Tensor deployed = tiled.matmul(x);
  std::int64_t correct = 0;
  for (std::int64_t k = 0; k < n_eval; ++k) {
    std::int64_t ideal_arg = 0, hw_arg = 0;
    for (std::int64_t j = 1; j < classes; ++j) {
      if (ideal.at(j, k) > ideal.at(ideal_arg, k)) ideal_arg = j;
      if (deployed.at(j, k) > deployed.at(hw_arg, k)) hw_arg = j;
    }
    if (ideal_arg == hw_arg) ++correct;
  }
  const double hw_acc =
      100.0 * static_cast<double>(correct) / static_cast<double>(n_eval);

  // 3. Attacks against the deployed classifier: FGSM (gradient path) and
  // Square (black-box query path) on a few 1x4x4 "images".
  TiledAttackModel victim(tiled, w);
  attack::SquareOptions sq;
  sq.epsilon = 0.15f;
  sq.max_queries = static_cast<std::int64_t>(flag_or(flags, "queries", 30));
  std::int64_t square_wins = 0;
  const std::int64_t n_attack = std::min<std::int64_t>(4, n_eval);
  for (std::int64_t k = 0; k < n_attack; ++k) {
    Tensor img({1, 4, 4});
    for (std::int64_t i = 0; i < feat; ++i) img.data()[static_cast<std::size_t>(i)] = x.at(i, k);
    const std::int64_t label = victim.predict(img);
    sq.seed = 100 + static_cast<std::uint64_t>(k);
    if (attack::square_attack(victim, img, label, sq).success) ++square_wins;
    (void)attack::fgsm_attack(victim, img, label, sq.epsilon);
  }

  std::printf(
      "quickstart on %s: %d solves (mean %.1f sweeps), tiled linear "
      "hw-vs-ideal agreement %.1f%% (n=%lld), square success %lld/%lld\n",
      cfg.name.c_str(), n_solves, mean_sweeps, hw_acc,
      static_cast<long long>(n_eval), static_cast<long long>(square_wins),
      static_cast<long long>(n_attack));

  manifest.set_note("model", "fast_noise tiled linear");
  manifest.add_result("hw_accuracy", hw_acc);
  manifest.add_result("mean_sweeps", mean_sweeps);
  manifest.add_result("square_success_rate",
                      100.0 * static_cast<double>(square_wins) /
                          static_cast<double>(n_attack));
  return 0;
}

/// Micro-batching inference service demo: stands up nvm::serve over a
/// crossbar-deployed linear classifier and drives it with deterministic
/// open-loop Poisson traffic.
int cmd_serve(const std::map<std::string, std::string>& flags) {
  core::RunManifest manifest = manifest_for("serve", flags);

  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  manifest.set_xbar(cfg);
  const std::string model_kind = flag_or(flags, "model", "fast_noise");
  std::shared_ptr<const xbar::MvmModel> model;
  if (model_kind == "fast_noise") {
    model = std::make_shared<xbar::FastNoiseModel>(cfg);
  } else if (model_kind == "ideal") {
    model = std::make_shared<xbar::IdealXbarModel>(cfg);
  } else {
    std::fprintf(stderr, "serve: --model must be fast_noise or ideal\n");
    return 2;
  }

  const auto classes = static_cast<std::int64_t>(flag_or(flags, "classes", 16));
  const auto feat = static_cast<std::int64_t>(flag_or(flags, "features", 128));
  const auto seed = static_cast<std::uint64_t>(flag_or(flags, "seed", 1));
  Rng wrng(derive_seed(seed, 0));
  Tensor w({classes, feat});
  for (auto& v : w.data()) v = static_cast<float>(wrng.uniform(-1.0, 1.0));
  serve::TiledLinearBackend backend(w, model, puma::HwConfig{}, 1.0f);

  const auto n = static_cast<std::int64_t>(flag_or(flags, "requests", 400));
  Rng xrng(derive_seed(seed, 1));
  std::vector<Tensor> requests;
  requests.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor x({feat});
    for (auto& v : x.data()) v = static_cast<float>(xrng.uniform());
    requests.push_back(std::move(x));
  }

  serve::ServeOptions opt = serve::ServeOptions::from_env();
  opt.max_batch = static_cast<std::int64_t>(
      flag_or(flags, "batch", static_cast<double>(opt.max_batch)));
  opt.flush_us = static_cast<std::int64_t>(
      flag_or(flags, "flush_us", static_cast<double>(opt.flush_us)));
  opt.queue_capacity = static_cast<std::int64_t>(
      flag_or(flags, "queue", static_cast<double>(opt.queue_capacity)));
  opt.timeout_us = static_cast<std::int64_t>(
      flag_or(flags, "timeout_us", static_cast<double>(opt.timeout_us)));
  serve::Server server(backend, opt);

  serve::TrafficOptions traffic;
  traffic.rate_rps = flag_or(flags, "rate", 2000.0);
  traffic.seed = derive_seed(seed, 2);
  const serve::TrafficReport rep =
      serve::run_open_loop(server, requests, traffic);
  server.drain();

  std::printf(
      "serve on %s (%s, %lldx%lld classifier): %lld ok / %lld shed / "
      "%lld timeout at %.0f rps offered\n"
      "  throughput %.0f rps, latency p50 %.3f ms p99 %.3f ms "
      "(queue p50 %.3f ms), mean batch %.1f\n",
      cfg.name.c_str(), model_kind.c_str(), static_cast<long long>(classes),
      static_cast<long long>(feat), static_cast<long long>(rep.ok),
      static_cast<long long>(rep.shed), static_cast<long long>(rep.timed_out),
      traffic.rate_rps, rep.throughput_rps, rep.p50_ms, rep.p99_ms,
      rep.queue_p50_ms, rep.mean_batch);

  manifest.set_note("model", model_kind);
  manifest.set_note("serve", "max_batch=" + std::to_string(opt.max_batch) +
                                 " flush_us=" + std::to_string(opt.flush_us));
  manifest.add_result("requests_ok", static_cast<double>(rep.ok));
  manifest.add_result("requests_shed", static_cast<double>(rep.shed));
  manifest.add_result("throughput_rps", rep.throughput_rps);
  manifest.add_result("latency_p50_ms", rep.p50_ms);
  manifest.add_result("latency_p99_ms", rep.p99_ms);
  manifest.add_result("queue_p50_ms", rep.queue_p50_ms);
  manifest.add_result("queue_p99_ms", rep.queue_p99_ms);
  manifest.add_result("mean_batch", rep.mean_batch);
  // Order-sensitive label checksum (FNV-1a over index+label), so scripted
  // A/B runs (e.g. NVM_PLAN=0 vs 1 in check.sh) can assert bit-identical
  // classifications from the manifest alone. Kept in double-exact range.
  std::uint64_t lsum = 1469598103934665603ull;
  for (std::size_t i = 0; i < rep.labels.size(); ++i) {
    lsum ^= static_cast<std::uint64_t>(rep.labels[i] + 2) * 31 + i;
    lsum *= 1099511628211ull;
  }
  manifest.add_result("labels_checksum", static_cast<double>(lsum >> 12));
  return rep.errors == 0 ? 0 : 1;
}

int cmd_serve_cluster(const std::map<std::string, std::string>& flags) {
  core::RunManifest manifest = manifest_for("serve_cluster", flags);

  xbar::CrossbarConfig cfg = xbar::xbar_32x32_100k();
  manifest.set_xbar(cfg);
  auto model = std::make_shared<xbar::FastNoiseModel>(cfg);

  // NVM_CLUSTER_* env fallbacks first, then explicit flags win.
  serve::ClusterOptions opt = serve::ClusterOptions::from_env();
  opt.shards = static_cast<std::int64_t>(
      flag_or(flags, "shards", static_cast<double>(opt.shards)));
  if (opt.shards < 1) opt.shards = 1;
  if (const auto it = flags.find("policy"); it != flags.end()) {
    if (!serve::try_parse_policy(it->second, &opt.policy)) {
      std::fprintf(stderr,
                   "serve_cluster: --policy must be round_robin | "
                   "consistent_hash | least_loaded\n");
      return 2;
    }
  }
  opt.vnodes =
      static_cast<int>(flag_or(flags, "vnodes", static_cast<double>(opt.vnodes)));
  opt.threads_per_shard = static_cast<std::int64_t>(flag_or(
      flags, "shard_threads", static_cast<double>(opt.threads_per_shard)));
  opt.serve.max_batch = static_cast<std::int64_t>(
      flag_or(flags, "batch", static_cast<double>(opt.serve.max_batch)));
  opt.serve.flush_us = static_cast<std::int64_t>(
      flag_or(flags, "flush_us", static_cast<double>(opt.serve.flush_us)));
  opt.serve.queue_capacity = static_cast<std::int64_t>(
      flag_or(flags, "queue", static_cast<double>(opt.serve.queue_capacity)));
  opt.serve.timeout_us = static_cast<std::int64_t>(
      flag_or(flags, "timeout_us", static_cast<double>(opt.serve.timeout_us)));

  const auto classes = static_cast<std::int64_t>(flag_or(flags, "classes", 16));
  const auto feat = static_cast<std::int64_t>(flag_or(flags, "features", 128));
  const auto seed = static_cast<std::uint64_t>(flag_or(flags, "seed", 1));
  Rng wrng(derive_seed(seed, 0));
  Tensor w({classes, feat});
  for (auto& v : w.data()) v = static_cast<float>(wrng.uniform(-1.0, 1.0));

  serve::Cluster cluster(opt);
  // Two tenants resident (multi-tenant by default); traffic below targets
  // "primary" only so the run stays comparable with `serve`.
  cluster.add_model(
      serve::tiled_linear_spec("primary", w, model, puma::HwConfig{}, 1.0f));
  cluster.add_model(
      serve::tiled_linear_spec("secondary", w, model, puma::HwConfig{}, 1.0f));

  const auto n = static_cast<std::int64_t>(flag_or(flags, "requests", 400));
  Rng xrng(derive_seed(seed, 1));
  std::vector<Tensor> requests;
  requests.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor x({feat});
    for (auto& v : x.data()) v = static_cast<float>(xrng.uniform());
    requests.push_back(std::move(x));
  }

  manifest.set_note("cluster", "shards=" + std::to_string(opt.shards) +
                                   " policy=" + to_string(opt.policy) +
                                   " vnodes=" + std::to_string(opt.vnodes));
  manifest.add_result("shards", static_cast<double>(opt.shards));

  const bool drain_race = flag_or(flags, "drain_race", 0.0) != 0.0;
  if (drain_race) {
    // Drain-under-fire accounting check: submitters race a cluster-wide
    // drain; every submit must still resolve to a terminal reply, and
    // nothing admitted may be lost. Exit 1 on any unaccounted request.
    const int n_threads = 4;
    const std::int64_t per_thread = (n + n_threads - 1) / n_threads;
    std::atomic<std::int64_t> ok{0}, shutdown{0}, shed{0}, other{0};
    std::vector<std::thread> workers;
    std::int64_t submitted = 0;
    for (int t = 0; t < n_threads; ++t) {
      const std::int64_t lo = t * per_thread;
      const std::int64_t hi = std::min<std::int64_t>(n, lo + per_thread);
      if (lo >= hi) break;
      submitted += hi - lo;
      workers.emplace_back([&, lo, hi] {
        for (std::int64_t i = lo; i < hi; ++i) {
          const serve::Reply r = cluster.classify(
              "primary", static_cast<std::uint64_t>(i),
              requests[static_cast<std::size_t>(i)]);
          if (r.status == serve::ReplyStatus::Ok) ok.fetch_add(1);
          else if (r.status == serve::ReplyStatus::Shutdown) shutdown.fetch_add(1);
          else if (r.status == serve::ReplyStatus::Shed) shed.fetch_add(1);
          else other.fetch_add(1);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    cluster.drain();
    for (auto& th : workers) th.join();
    const std::int64_t accounted = ok.load() + shutdown.load() + shed.load();
    const bool all_accounted =
        other.load() == 0 && accounted == submitted;
    std::printf(
        "serve_cluster drain race: %lld submitted, %lld ok / %lld shutdown / "
        "%lld shed / %lld other -> %s\n",
        static_cast<long long>(submitted), static_cast<long long>(ok.load()),
        static_cast<long long>(shutdown.load()),
        static_cast<long long>(shed.load()),
        static_cast<long long>(other.load()),
        all_accounted ? "all accounted" : "LOST REQUESTS");
    manifest.add_result("requests_submitted", static_cast<double>(submitted));
    manifest.add_result("requests_ok", static_cast<double>(ok.load()));
    manifest.add_result("requests_shutdown",
                        static_cast<double>(shutdown.load()));
    manifest.add_result("requests_shed", static_cast<double>(shed.load()));
    manifest.add_result("all_accounted", all_accounted ? 1.0 : 0.0);
    return all_accounted ? 0 : 1;
  }

  serve::TrafficOptions traffic;
  traffic.rate_rps = flag_or(flags, "rate", 2000.0);
  traffic.seed = derive_seed(seed, 2);
  const std::vector<std::string> tenants = {"primary"};
  const serve::ClusterTrafficReport rep =
      run_cluster_open_loop(cluster, tenants, requests, traffic);
  cluster.drain();

  std::printf(
      "serve_cluster on %s: %lld shards, %s dispatch, %lldx%lld classifier, "
      "2 tenants\n  %lld ok / %lld shed / %lld timeout at %.0f rps offered\n"
      "  throughput %.0f rps, latency p50 %.3f ms p99 %.3f ms\n",
      cfg.name.c_str(), static_cast<long long>(opt.shards),
      to_string(opt.policy), static_cast<long long>(classes),
      static_cast<long long>(feat), static_cast<long long>(rep.total.ok),
      static_cast<long long>(rep.total.shed),
      static_cast<long long>(rep.total.timed_out), traffic.rate_rps,
      rep.total.throughput_rps, rep.total.p50_ms, rep.total.p99_ms);
  for (std::size_t k = 0; k < rep.shards.size(); ++k) {
    const auto& s = rep.shards[k];
    std::printf("  shard %zu: %lld ok, p50 %.3f ms p99 %.3f ms\n", k,
                static_cast<long long>(s.ok), s.p50_ms, s.p99_ms);
    const std::string key = "shard" + std::to_string(k) + "_";
    manifest.add_result(key + "ok", static_cast<double>(s.ok));
    manifest.add_result(key + "p99_ms", s.p99_ms);
  }
  manifest.add_result("requests_ok", static_cast<double>(rep.total.ok));
  manifest.add_result("requests_shed", static_cast<double>(rep.total.shed));
  manifest.add_result("throughput_rps", rep.total.throughput_rps);
  manifest.add_result("latency_p50_ms", rep.total.p50_ms);
  manifest.add_result("latency_p99_ms", rep.total.p99_ms);
  return rep.total.errors == 0 ? 0 : 1;
}

void usage() {
  std::printf(
      "usage: nvmrobust_cli <command> [--flag value ...]\n"
      "  quickstart [--n K --solves S]       fast all-layer smoke run\n"
      "  tasks                               list built-in tasks\n"
      "  nf     [--rows N --ron OHM ...]     NF of a custom crossbar design\n"
      "  eval   --task NAME [--xbar MODEL]   clean accuracy\n"
      "  attack --task NAME [--xbar MODEL --eps E --iters I]\n"
      "                                      white-box PGD + transfer\n"
      "  fault_sweep --task NAME [--xbar MODEL --model geniex|fast_noise|solver\n"
      "              --rates 0,0.01,0.05 --drift 0 --chip S --n K\n"
      "              --attack pgd|square|both|none --eps E --iters I]\n"
      "                                      accuracy vs device fault rate\n"
      "  serve  [--rate RPS --requests N --batch B --flush_us US --queue Q\n"
      "          --timeout_us US --model fast_noise|ideal]\n"
      "                                      micro-batching inference service\n"
      "                                      under open-loop Poisson traffic\n"
      "  serve_cluster [--shards N --policy round_robin|consistent_hash|\n"
      "          least_loaded --vnodes V --shard_threads T --rate RPS\n"
      "          --requests N --batch B --flush_us US --queue Q\n"
      "          --timeout_us US --classes C --features F --drain_race 0|1]\n"
      "                                      sharded multi-tenant serving\n"
      "                                      cluster; --drain_race 1 races\n"
      "                                      submitters against drain()\n"
      "  fleet_sim --task NAME [--model fast_noise|geniex|solver --chips N\n"
      "            --epochs E --sample K --dt SEC --policy never|always|\n"
      "            threshold|budgeted --budget B --n K --attack pgd|none\n"
      "            --slo_clean PCT --slo_avail F --seed S]\n"
      "                                      population-scale aging + SLA +\n"
      "                                      recalibration scheduling\n"
      "crossbar MODEL is one of: 64x64_300k, 32x32_100k, 64x64_100k\n"
      "serve also honours NVM_SERVE_MAX_BATCH / NVM_SERVE_FLUSH_US /\n"
      "NVM_SERVE_QUEUE_CAP / NVM_SERVE_TIMEOUT_US\n"
      "serve_cluster also honours NVM_CLUSTER_SHARDS / NVM_CLUSTER_POLICY /\n"
      "NVM_CLUSTER_VNODES / NVM_CLUSTER_SHARD_THREADS (flags win)\n"
      "fleet_sim also honours NVM_FLEET_CHIPS / NVM_FLEET_EPOCHS /\n"
      "NVM_FLEET_SAMPLE / NVM_FLEET_DT_S / NVM_FLEET_AGE_SPREAD_S /\n"
      "NVM_FLEET_SEED / NVM_FLEET_POLICY\n"
      "every command also accepts --metrics-out PATH (or NVM_METRICS_OUT)\n"
      "to write a JSON run manifest, and --trace-events PATH (or\n"
      "NVM_TRACE_EVENTS) to write a chrome://tracing / Perfetto timeline\n"
      "NVM_PLAN=0 disables the fused execution plans (the lazily-compiled\n"
      "per-matrix schedules, cached under NVMROBUST_CACHE_DIR) and runs\n"
      "the bit-identical op-by-op interpreter instead\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  // --trace-events PATH: same effect as NVM_TRACE_EVENTS — record every
  // NVM_TRACE_SPAN as Chrome-trace B/E events and flush the timeline JSON
  // at exit (chrome://tracing / Perfetto).
  if (const auto it = flags.find("trace-events"); it != flags.end())
    nvm::trace::enable_events(it->second);
  if (cmd == "quickstart") return cmd_quickstart(flags);
  if (cmd == "nf") return cmd_nf(flags);
  if (cmd == "tasks") return cmd_tasks();
  if (cmd == "eval") return cmd_eval(flags);
  if (cmd == "attack") return cmd_attack(flags);
  if (cmd == "fault_sweep") return cmd_fault_sweep(flags);
  if (cmd == "fleet_sim") return cmd_fleet_sim(flags);
  if (cmd == "serve") return cmd_serve(flags);
  if (cmd == "serve_cluster") return cmd_serve_cluster(flags);
  usage();
  return 2;
}

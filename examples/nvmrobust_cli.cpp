// nvmrobust_cli — command-line front end for one-off experiments.
//
// Subcommands:
//   nf [--rows N] [--cols N] [--ron OHM] [--rwire OHM] [--samples K]
//       Fit a GENIEx surrogate for a custom crossbar design (cached) and
//       print its NF measured on surrogate and circuit solver.
//   tasks
//       List the built-in tasks with their dataset/network parameters.
//   eval --task NAME [--xbar MODEL] [--n K]
//       Clean accuracy of a task's (cached) network, digital or deployed.
//   attack --task NAME [--xbar MODEL] [--eps E/255] [--iters I] [--n K]
//       Non-adaptive white-box PGD: craft on digital, evaluate digital +
//       optional crossbar deployment.
//   fault_sweep --task NAME [--xbar MODEL] [--model geniex|fast_noise|solver]
//       [--rates R1,R2,...] [--drift T1,T2,...] [--dead_rows R] [--dead_cols R]
//       [--chip S] [--n K] [--eps E/255] [--iters I] [--attack pgd|square|both|none]
//       Clean + transferred-adversarial accuracy vs stuck-cell rate and
//       conductance-drift time, with failure-handling counters per row.
//
// All artifacts cache under ./repro_cache; everything is deterministic.
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "attack/pgd.h"
#include "core/evaluator.h"
#include "core/fault_sweep.h"
#include "core/tasks.h"
#include "puma/hw_network.h"
#include "xbar/model_zoo.h"
#include "xbar/nf.h"

namespace {

using namespace nvm;

/// Minimal --key value parser; flags must all take a value.
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
      std::exit(2);
    }
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

double flag_or(const std::map<std::string, std::string>& flags,
               const std::string& key, double fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

std::string flag_or(const std::map<std::string, std::string>& flags,
                    const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

core::Task find_task(const std::string& name) {
  for (const core::Task& t : core::all_tasks())
    if (t.name == name) return t;
  std::fprintf(stderr, "unknown task '%s' (try: SCIFAR10, SCIFAR100, SIMAGENET)\n",
               name.c_str());
  std::exit(2);
}

int cmd_nf(const std::map<std::string, std::string>& flags) {
  xbar::CrossbarConfig cfg = xbar::xbar_64x64_100k();
  cfg.rows = static_cast<std::int64_t>(flag_or(flags, "rows", 64));
  cfg.cols = static_cast<std::int64_t>(flag_or(flags, "cols", cfg.rows));
  cfg.r_on = flag_or(flags, "ron", cfg.r_on);
  cfg.r_wire = flag_or(flags, "rwire", cfg.r_wire);
  cfg.r_source = flag_or(flags, "rsource", cfg.r_source);
  cfg.r_sink = flag_or(flags, "rsink", cfg.r_sink);
  char name[64];
  std::snprintf(name, sizeof name, "cli_%lldx%lld_%.0fk",
                static_cast<long long>(cfg.rows),
                static_cast<long long>(cfg.cols), cfg.r_on / 1000.0);
  cfg.name = name;

  xbar::GeniexTrainOptions train;
  train.solver_samples =
      static_cast<std::int64_t>(flag_or(flags, "samples", 240));
  auto model = xbar::GeniexModel::load_or_train(cfg, train);

  xbar::NfOptions nf_opt;
  nf_opt.samples = static_cast<std::int64_t>(flag_or(flags, "nf_samples", 24));
  const auto geniex_nf = xbar::measure_nf(model, nf_opt);
  xbar::CircuitSolverModel solver(cfg);
  const auto solver_nf = xbar::measure_nf(solver, nf_opt);
  std::printf("design %s: NF = %.4f +- %.4f (geniex), %.4f +- %.4f (solver)\n",
              cfg.name.c_str(), geniex_nf.nf, geniex_nf.nf_stddev,
              solver_nf.nf, solver_nf.nf_stddev);
  return 0;
}

int cmd_tasks() {
  std::printf("%-10s %-24s %7s %6s %7s %6s\n", "name", "paper analogue",
              "classes", "size", "train", "test");
  for (const core::Task& t : core::all_tasks())
    std::printf("%-10s %-24s %7lld %6lld %7lld %6lld\n", t.name.c_str(),
                t.paper_analogue.c_str(),
                static_cast<long long>(t.data_spec.classes),
                static_cast<long long>(t.data_spec.image_size),
                static_cast<long long>(t.data_spec.train_count),
                static_cast<long long>(t.data_spec.test_count));
  return 0;
}

int cmd_eval(const std::map<std::string, std::string>& flags) {
  core::PreparedTask prepared =
      core::prepare(find_task(flag_or(flags, "task", "SCIFAR10")));
  const auto n = static_cast<std::int64_t>(flag_or(flags, "n", 96));
  auto images = prepared.eval_images(n);
  auto labels = prepared.eval_labels(n);
  const std::string xbar_name = flag_or(flags, "xbar", std::string());
  if (xbar_name.empty()) {
    std::printf("%s digital accuracy: %.2f%% (n=%lld)\n",
                prepared.task.name.c_str(),
                core::accuracy(core::plain_forward(prepared.network), images,
                               labels),
                static_cast<long long>(images.size()));
  } else {
    auto model = xbar::make_geniex(xbar_name);
    auto calib = prepared.calibration_images();
    puma::HwDeployment dep(prepared.network, model, calib);
    std::printf("%s on %s: %.2f%% (n=%lld)\n", prepared.task.name.c_str(),
                xbar_name.c_str(),
                core::accuracy(core::plain_forward(prepared.network), images,
                               labels),
                static_cast<long long>(images.size()));
  }
  return 0;
}

int cmd_attack(const std::map<std::string, std::string>& flags) {
  core::PreparedTask prepared =
      core::prepare(find_task(flag_or(flags, "task", "SCIFAR10")));
  const auto n = static_cast<std::int64_t>(flag_or(flags, "n", 48));
  auto images = prepared.eval_images(n);
  auto labels = prepared.eval_labels(n);

  attack::PgdOptions opt;
  opt.epsilon = static_cast<float>(flag_or(flags, "eps", 6.0)) / 255.0f;
  opt.iters = static_cast<std::int64_t>(flag_or(flags, "iters", 30));
  attack::NetworkAttackModel attacker(prepared.network);
  std::vector<Tensor> adv = core::craft_pgd(attacker, images, labels, opt);

  std::printf("white-box PGD eps=%.1f/255 iters=%lld on %s (n=%lld)\n",
              opt.epsilon * 255.0f, static_cast<long long>(opt.iters),
              prepared.task.name.c_str(),
              static_cast<long long>(images.size()));
  std::printf("  digital: clean %.2f%%, adversarial %.2f%%\n",
              core::accuracy(core::plain_forward(prepared.network), images,
                             labels),
              core::accuracy(core::plain_forward(prepared.network),
                             std::span<const Tensor>(adv.data(), adv.size()),
                             labels));
  const std::string xbar_name = flag_or(flags, "xbar", std::string());
  if (!xbar_name.empty()) {
    auto model = xbar::make_geniex(xbar_name);
    auto calib = prepared.calibration_images();
    puma::HwDeployment dep(prepared.network, model, calib);
    std::printf("  %s: clean %.2f%%, adversarial %.2f%%\n", xbar_name.c_str(),
                core::accuracy(core::plain_forward(prepared.network), images,
                               labels),
                core::accuracy(core::plain_forward(prepared.network),
                               std::span<const Tensor>(adv.data(), adv.size()),
                               labels));
  }
  return 0;
}

/// "0,0.01,0.05" -> {0, 0.01, 0.05}.
std::vector<double> parse_list(const std::string& s) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stod(item));
  return out;
}

int cmd_fault_sweep(const std::map<std::string, std::string>& flags) {
  core::PreparedTask prepared =
      core::prepare(find_task(flag_or(flags, "task", "SCIFAR10")));
  const std::string xbar_name = flag_or(flags, "xbar", "64x64_100k");
  const std::string model_kind = flag_or(flags, "model", "geniex");

  std::shared_ptr<const xbar::MvmModel> base;
  if (model_kind == "geniex") {
    base = xbar::make_geniex(xbar_name);
  } else if (model_kind == "solver") {
    base = xbar::make_solver(xbar_name);
  } else if (model_kind == "fast_noise") {
    base = std::make_shared<xbar::FastNoiseModel>(
        xbar::make_solver(xbar_name)->config());
  } else {
    std::fprintf(stderr,
                 "unknown --model '%s' (try: geniex, fast_noise, solver)\n",
                 model_kind.c_str());
    return 2;
  }

  core::FaultSweepOptions opt;
  if (flags.count("rates")) opt.stuck_rates = parse_list(flags.at("rates"));
  if (flags.count("drift")) opt.drift_times = parse_list(flags.at("drift"));
  opt.stuck_on_fraction = flag_or(flags, "stuck_on_frac", 0.5);
  opt.dead_row_rate = flag_or(flags, "dead_rows", 0.0);
  opt.dead_col_rate = flag_or(flags, "dead_cols", 0.0);
  opt.chip_seed = static_cast<std::uint64_t>(flag_or(flags, "chip", 1));
  opt.n_eval = static_cast<std::int64_t>(flag_or(flags, "n", 32));
  opt.pgd_eps_255 = static_cast<float>(flag_or(flags, "eps", 2.0));
  opt.pgd_iters = static_cast<std::int64_t>(flag_or(flags, "iters", 20));
  opt.square_queries =
      static_cast<std::int64_t>(flag_or(flags, "queries", 300));
  const std::string attack_kind = flag_or(flags, "attack", "pgd");
  opt.run_pgd = attack_kind == "pgd" || attack_kind == "both";
  opt.run_square = attack_kind == "square" || attack_kind == "both";

  const auto result = core::run_fault_sweep(prepared, base, opt);
  core::print_fault_sweep(prepared.task, base->name() + "/" + xbar_name, opt,
                          result);
  return 0;
}

void usage() {
  std::printf(
      "usage: nvmrobust_cli <command> [--flag value ...]\n"
      "  tasks                               list built-in tasks\n"
      "  nf     [--rows N --ron OHM ...]     NF of a custom crossbar design\n"
      "  eval   --task NAME [--xbar MODEL]   clean accuracy\n"
      "  attack --task NAME [--xbar MODEL --eps E --iters I]\n"
      "                                      white-box PGD + transfer\n"
      "  fault_sweep --task NAME [--xbar MODEL --model geniex|fast_noise|solver\n"
      "              --rates 0,0.01,0.05 --drift 0 --chip S --n K\n"
      "              --attack pgd|square|both|none --eps E --iters I]\n"
      "                                      accuracy vs device fault rate\n"
      "crossbar MODEL is one of: 64x64_300k, 32x32_100k, 64x64_100k\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const auto flags = parse_flags(argc, argv, 2);
  if (cmd == "nf") return cmd_nf(flags);
  if (cmd == "tasks") return cmd_tasks();
  if (cmd == "eval") return cmd_eval(flags);
  if (cmd == "attack") return cmd_attack(flags);
  if (cmd == "fault_sweep") return cmd_fault_sweep(flags);
  usage();
  return 2;
}

// Example: "Hardware-in-Loop" adaptive white-box attacks (paper §III-C2).
//
// The NVM inference hardware cannot backpropagate, so the adaptive
// attacker runs the forward pass on the crossbar, records the (non-ideal)
// activations, and applies ideal derivatives at those activations. This
// example crafts such attacks with a MATCHING crossbar model and with a
// MISMATCHED one, and shows the paper's transferability finding: a wrong
// crossbar model is worse for the attacker than no crossbar model at all.
#include <cstdio>

#include "attack/pgd.h"
#include "core/evaluator.h"
#include "core/tasks.h"
#include "puma/hw_network.h"
#include "xbar/model_zoo.h"

int main() {
  using namespace nvm;
  core::PreparedTask prepared = core::prepare(core::task_scifar10());
  const std::int64_t n = 32;
  auto images = prepared.eval_images(n);
  auto labels = prepared.eval_labels(n);
  auto calib = prepared.calibration_images();

  const std::string target_name = "64x64_100k";
  const std::string wrong_name = "64x64_300k";
  auto target = xbar::make_geniex(target_name);
  auto wrong = xbar::make_geniex(wrong_name);

  attack::PgdOptions pgd;
  pgd.epsilon = prepared.task.scaled_eps(2.0f);
  pgd.iters = 30;

  // 1. Non-adaptive: gradients from the digital network.
  attack::NetworkAttackModel attacker(prepared.network);
  std::vector<Tensor> adv_digital =
      core::craft_pgd(attacker, images, labels, pgd);

  // 2. Adaptive, matching hardware: forward on the target's crossbar.
  std::vector<Tensor> adv_matched;
  {
    puma::HwDeployment dep(prepared.network, target, calib);
    adv_matched = core::craft_pgd(attacker, images, labels, pgd);
  }

  // 3. Adaptive, mismatched hardware: the attacker only has a different
  //    crossbar technology.
  std::vector<Tensor> adv_mismatched;
  {
    puma::HwDeployment dep(prepared.network, wrong, calib);
    adv_mismatched = core::craft_pgd(attacker, images, labels, pgd);
  }

  // Evaluate everything on the real target deployment.
  auto eval_on_target = [&](std::span<const Tensor> set) {
    puma::HwDeployment dep(prepared.network, target, calib);
    return core::accuracy(core::plain_forward(prepared.network), set, labels);
  };
  const float clean = eval_on_target(images);
  const float acc_digital = eval_on_target(adv_digital);
  const float acc_matched = eval_on_target(adv_matched);
  const float acc_mismatched = eval_on_target(adv_mismatched);

  std::printf("target deployment: %s; PGD eps=%.1f/255, iter=30\n",
              target_name.c_str(), pgd.epsilon * 255.0f);
  std::printf("%-46s %8.2f%%\n", "clean accuracy on target", clean);
  std::printf("%-46s %8.2f%%\n", "non-adaptive attack (digital gradients)",
              acc_digital);
  std::printf("%-46s %8.2f%%  <- strongest\n",
              ("adaptive, matching model (" + target_name + ")").c_str(),
              acc_matched);
  std::printf("%-46s %8.2f%%  <- mismatch hurts the attacker\n",
              ("adaptive, wrong model (" + wrong_name + ")").c_str(),
              acc_mismatched);
  return 0;
}

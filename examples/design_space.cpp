// Example: crossbar design-space exploration (paper §V).
//
// "One can potentially design NVM crossbars with an optimal trade-off
// between accuracy degradation and increased robustness due to
// non-idealities." This example sweeps custom crossbar designs — array
// size and ON resistance — fits a GENIEx surrogate for each against the
// in-repo circuit solver, and reports NF, clean accuracy, and white-box
// adversarial accuracy of a SCIFAR10 deployment, so a designer can pick
// the knee point.
#include <cstdio>

#include "attack/pgd.h"
#include "core/evaluator.h"
#include "core/tasks.h"
#include "puma/hw_network.h"
#include "xbar/geniex.h"
#include "xbar/nf.h"

int main() {
  using namespace nvm;
  core::PreparedTask prepared = core::prepare(core::task_scifar10());
  const std::int64_t n = 48;
  auto images = prepared.eval_images(n);
  auto labels = prepared.eval_labels(n);
  auto calib = prepared.calibration_images();

  // One shared white-box adversarial set (the attacker is unaware of any
  // of the candidate designs).
  attack::NetworkAttackModel attacker(prepared.network);
  attack::PgdOptions pgd;
  pgd.epsilon = prepared.task.scaled_eps(2.0f);
  pgd.iters = 30;
  std::vector<Tensor> adv = core::craft_pgd(attacker, images, labels, pgd);
  const float base_clean =
      core::accuracy(core::plain_forward(prepared.network), images, labels);
  const float base_adv =
      core::accuracy(core::plain_forward(prepared.network), adv, labels);

  std::printf("digital baseline: clean %.2f%%, white-box adv %.2f%%\n\n",
              base_clean, base_adv);
  std::printf("%-18s %6s %10s %12s %12s\n", "design", "NF", "clean",
              "adv (WB)", "adv gain");

  struct Design {
    std::int64_t size;
    double r_on;
  };
  for (const Design& d : {Design{32, 300e3}, Design{32, 100e3},
                          Design{48, 100e3}, Design{64, 100e3},
                          Design{64, 50e3}}) {
    xbar::CrossbarConfig cfg = xbar::xbar_64x64_100k();
    cfg.rows = cfg.cols = d.size;
    cfg.r_on = d.r_on;
    char name[32];
    std::snprintf(name, sizeof name, "%lldx%lld_%.0fk",
                  static_cast<long long>(d.size),
                  static_cast<long long>(d.size), d.r_on / 1000.0);
    cfg.name = name;

    // Fit (or cache-load) the surrogate for this candidate design.
    auto model = std::make_shared<xbar::GeniexModel>(
        xbar::GeniexModel::load_or_train(cfg));
    xbar::NfOptions nf_opt;
    nf_opt.samples = 16;
    const double nf = xbar::measure_nf(*model, nf_opt).nf;

    puma::HwDeployment dep(prepared.network, model, calib);
    const float clean =
        core::accuracy(core::plain_forward(prepared.network), images, labels);
    const float adv_acc = core::accuracy(
        core::plain_forward(prepared.network),
        std::span<const Tensor>(adv.data(), adv.size()), labels);
    std::printf("%-18s %6.3f %9.2f%% %11.2f%% %+11.2f%%\n", name, nf, clean,
                adv_acc, adv_acc - base_adv);
  }
  std::printf(
      "\nPick the design where the robustness gain outweighs the clean-accuracy"
      "\ncost for your deployment (the paper's push-pull trade-off).\n");
  return 0;
}
